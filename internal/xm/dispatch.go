package xm

import "xmrobust/internal/sparc"

// arg helpers: hypercall arguments travel as uint64 registers; services
// narrow them to the declared parameter type exactly as the SPARC ABI
// would (truncation, not range checking — range checking is the service's
// job, and the absence of it is what the campaign probes).

func arg(args []uint64, i int) uint64 {
	if i < len(args) {
		return args[i]
	}
	return 0
}

func argU32(args []uint64, i int) uint32 { return uint32(arg(args, i)) }
func argS32(args []uint64, i int) int32  { return int32(uint32(arg(args, i))) }
func argS64(args []uint64, i int) int64  { return int64(arg(args, i)) }
func argPtr(args []uint64, i int) sparc.Addr {
	return sparc.Addr(uint32(arg(args, i)))
}

// dispatch validates privilege and routes a hypercall to its service.
// It charges the base hypercall cost; services charge any additional work.
// With a coverage sink attached it also records the (nr, return) edge and
// tags HM events raised inside the service with the dispatching nr; the
// uninstrumented path pays a single nil check.
func (k *Kernel) dispatch(caller *Partition, nr Nr, args []uint64) RetCode {
	if k.cover == nil {
		return k.route(caller, nr, args)
	}
	prev := k.coverNr
	k.coverNr = nr
	// Services abort mid-dispatch through the guestStop panic (resets,
	// halts, XM_idle_self); the deferred restore keeps nr attribution
	// correct for the enclosing dispatch, and the outcome edge of an
	// aborted call is deliberately not recorded — the guest never saw a
	// return code.
	defer func() { k.coverNr = prev }()
	ret := k.route(caller, nr, args)
	k.cover.Hit(CoverSiteDispatch(nr, ret))
	return ret
}

// route is the uninstrumented dispatcher body.
func (k *Kernel) route(caller *Partition, nr Nr, args []uint64) RetCode {
	k.hypercallCount++
	k.charge(HypercallCost)
	spec, ok := Lookup(nr)
	if !ok {
		return UnknownHypercall
	}
	if spec.SystemOnly && !caller.System() {
		return PermError
	}
	switch nr {
	// System Management
	case NrHaltSystem:
		return k.hcHaltSystem(caller)
	case NrResetSystem:
		return k.hcResetSystem(caller, argU32(args, 0))
	case NrGetSystemStatus:
		return k.hcGetSystemStatus(caller, argPtr(args, 0))
	// Partition Management
	case NrHaltPartition:
		return k.hcHaltPartition(caller, argS32(args, 0))
	case NrResetPartition:
		return k.hcResetPartition(caller, argS32(args, 0), argU32(args, 1), argU32(args, 2))
	case NrSuspendPartition:
		return k.hcSuspendPartition(caller, argS32(args, 0))
	case NrResumePartition:
		return k.hcResumePartition(caller, argS32(args, 0))
	case NrShutdownPartition:
		return k.hcShutdownPartition(caller, argS32(args, 0))
	case NrGetPartitionStatus:
		return k.hcGetPartitionStatus(caller, argS32(args, 0), argPtr(args, 1))
	case NrIdleSelf:
		return k.hcIdleSelf(caller)
	case NrSuspendSelf:
		return k.hcSuspendSelf(caller)
	case NrGetPartitionMmap:
		return k.hcGetPartitionMmap(caller, argPtr(args, 0))
	case NrSetPartitionOpMode:
		return k.hcSetPartitionOpMode(caller, argU32(args, 0))
	// Time Management
	case NrGetTime:
		return k.hcGetTime(caller, argU32(args, 0), argPtr(args, 1))
	case NrSetTimer:
		return k.hcSetTimer(caller, argU32(args, 0), argS64(args, 1), argS64(args, 2))
	// Plan Management
	case NrSwitchSchedPlan:
		return k.hcSwitchSchedPlan(caller, argU32(args, 0), argPtr(args, 1))
	case NrGetPlanStatus:
		return k.hcGetPlanStatus(caller, argPtr(args, 0))
	// Inter-Partition Communication
	case NrCreateSamplingPort:
		return k.hcCreateSamplingPort(caller, argPtr(args, 0), argU32(args, 1), argU32(args, 2))
	case NrWriteSamplingMsg:
		return k.hcWriteSamplingMsg(caller, argS32(args, 0), argPtr(args, 1), argU32(args, 2))
	case NrReadSamplingMsg:
		return k.hcReadSamplingMsg(caller, argS32(args, 0), argPtr(args, 1), argU32(args, 2))
	case NrCreateQueuingPort:
		return k.hcCreateQueuingPort(caller, argPtr(args, 0), argU32(args, 1), argU32(args, 2), argU32(args, 3))
	case NrSendQueuingMsg:
		return k.hcSendQueuingMsg(caller, argS32(args, 0), argPtr(args, 1), argU32(args, 2))
	case NrReceiveQueuingMsg:
		return k.hcReceiveQueuingMsg(caller, argS32(args, 0), argPtr(args, 1), argU32(args, 2))
	case NrGetPortStatus:
		return k.hcGetPortStatus(caller, argS32(args, 0), argPtr(args, 1))
	case NrClosePort:
		return k.hcClosePort(caller, argS32(args, 0))
	case NrFlushPort:
		return k.hcFlushPort(caller, argS32(args, 0))
	case NrGetPortInfo:
		return k.hcGetPortInfo(caller, argPtr(args, 0), argPtr(args, 1))
	// Memory Management
	case NrMemoryCopy:
		return k.hcMemoryCopy(caller, argPtr(args, 0), argPtr(args, 1), argU32(args, 2))
	case NrUpdatePage32:
		return k.hcUpdatePage32(caller, argPtr(args, 0), argU32(args, 1))
	// Health Monitor Management
	case NrHmRead:
		return k.hcHmRead(caller, argPtr(args, 0), argU32(args, 1))
	case NrHmSeek:
		return k.hcHmSeek(caller, argS32(args, 0), argU32(args, 1))
	case NrHmStatus:
		return k.hcHmStatus(caller, argPtr(args, 0))
	case NrHmOpen:
		return OK
	case NrHmReset:
		k.hm.clearLog()
		return OK
	// Trace Management
	case NrTraceEvent:
		return k.hcTraceEvent(caller, argU32(args, 0), argPtr(args, 1))
	case NrTraceRead:
		return k.hcTraceRead(caller, argS32(args, 0), argPtr(args, 1))
	case NrTraceSeek:
		return k.hcTraceSeek(caller, argS32(args, 0), argS32(args, 1), argU32(args, 2))
	case NrTraceStatus:
		return k.hcTraceStatus(caller, argS32(args, 0), argPtr(args, 1))
	case NrTraceOpen:
		return k.hcTraceOpen(caller, argS32(args, 0))
	// Interrupt Management
	case NrEnableIrqs:
		return k.hcEnableIrqs(caller)
	case NrSetIrqMask:
		return k.hcSetIrqMask(caller, argU32(args, 0), argU32(args, 1))
	case NrClearIrqMask:
		return k.hcClearIrqMask(caller, argU32(args, 0), argU32(args, 1))
	case NrSetIrqPend:
		return k.hcSetIrqPend(caller, argU32(args, 0), argU32(args, 1))
	case NrRouteIrq:
		return k.hcRouteIrq(caller, argU32(args, 0), argU32(args, 1), argU32(args, 2))
	// Miscellaneous
	case NrMulticall:
		return k.hcMulticall(caller, argPtr(args, 0), argPtr(args, 1))
	case NrWriteConsole:
		return k.hcWriteConsole(caller, argPtr(args, 0), argU32(args, 1))
	case NrGetGidByName:
		return k.hcGetGidByName(caller, argPtr(args, 0), argU32(args, 1))
	case NrFlushCache:
		return k.hcFlushCache(caller, argU32(args, 0))
	case NrGetParams:
		return k.hcGetParams(caller, argPtr(args, 0))
	// Sparc V8 Specific
	case NrSparcAtomicAdd:
		return k.hcSparcAtomic(caller, argPtr(args, 0), argU32(args, 1), atomicAdd)
	case NrSparcAtomicAnd:
		return k.hcSparcAtomic(caller, argPtr(args, 0), argU32(args, 1), atomicAnd)
	case NrSparcAtomicOr:
		return k.hcSparcAtomic(caller, argPtr(args, 0), argU32(args, 1), atomicOr)
	case NrSparcInPort:
		return k.hcSparcInPort(caller, argU32(args, 0), argPtr(args, 1))
	case NrSparcOutPort:
		return k.hcSparcOutPort(caller, argU32(args, 0), argU32(args, 1))
	case NrSparcGetPsr:
		return RetCode(caller.psr & 0x7FFFFFFF)
	case NrSparcSetPsr:
		return k.hcSparcSetPsr(caller, argU32(args, 0))
	case NrSparcWriteTbr:
		return k.hcSparcWriteTbr(caller, argU32(args, 0))
	case NrSparcFlushRegWin, NrSparcEnableTraps, NrSparcDisableTrap:
		return OK
	case NrSparcIFlush:
		return k.hcSparcIFlush(caller, argPtr(args, 0))
	}
	return UnknownHypercall
}
