package xm

import (
	"fmt"

	"xmrobust/internal/sparc"
)

// ChannelType selects the IPC semantics of a configured channel.
type ChannelType int

// Channel types, as in the XM_CF configuration schema.
const (
	SamplingChannel ChannelType = iota
	QueuingChannel
)

func (t ChannelType) String() string {
	if t == SamplingChannel {
		return "sampling"
	}
	return "queuing"
}

// PartitionConfig is the static definition of one partition: identity,
// privilege, memory areas, interrupt lines and console rights. It is the
// Go form of a <Partition> element of the XM_CF configuration file.
type PartitionConfig struct {
	ID     int
	Name   string
	System bool // system partition: may manage other partitions and the kernel
	// MemoryAreas are the physical regions the partition may touch. The
	// first writable area is also where the guest runtime places its data.
	MemoryAreas []sparc.Region
	// HwIrqLines are the hardware interrupt lines allocated to the
	// partition (IRQ hypercalls reject lines outside this set).
	HwIrqLines []int
	// IOPorts grants access to the simulated I/O register bank
	// (XM_sparc_inport / XM_sparc_outport).
	IOPorts bool
}

// SlotConfig is one execution window inside a scheduling plan's major
// frame. Offsets and durations are microseconds.
type SlotConfig struct {
	PartitionID int
	Start       Time
	Duration    Time
}

// PlanConfig is one cyclic scheduling plan.
type PlanConfig struct {
	ID         int
	MajorFrame Time
	Slots      []SlotConfig
}

// ChannelConfig statically defines one IPC channel linking a source
// partition to one destination partition.
type ChannelConfig struct {
	Name        string
	Type        ChannelType
	MaxMsgSize  uint32
	MaxNoMsgs   uint32 // queuing only
	Source      int    // partition id
	Destination int    // partition id
}

// Config is the complete static system definition the kernel boots from —
// the role the XM_CF XML plays for real XtratuM. Package xmcfg parses that
// XML into this structure.
type Config struct {
	Name       string
	Partitions []PartitionConfig
	Plans      []PlanConfig
	Channels   []ChannelConfig
	// HMActions overrides the default health-monitor table
	// (DefaultHMActions) per event.
	HMActions map[HMEvent]HMAction
}

// Validate checks the structural invariants the kernel relies on:
// contiguous partition ids, non-overlapping memory areas across partitions,
// slots inside the major frame referencing defined partitions, channel
// endpoints referencing defined partitions, and at least one plan.
func (c *Config) Validate() error {
	if len(c.Partitions) == 0 {
		return fmt.Errorf("config %q: no partitions", c.Name)
	}
	if len(c.Plans) == 0 {
		return fmt.Errorf("config %q: no scheduling plans", c.Name)
	}
	for i, pc := range c.Partitions {
		if pc.ID != i {
			return fmt.Errorf("partition %q: id %d out of order (want %d)", pc.Name, pc.ID, i)
		}
		if pc.Name == "" {
			return fmt.Errorf("partition %d: empty name", pc.ID)
		}
		if len(pc.MemoryAreas) == 0 {
			return fmt.Errorf("partition %q: no memory areas", pc.Name)
		}
	}
	// Spatial separation at configuration time: writable areas must not
	// overlap any other partition's areas.
	for i, a := range c.Partitions {
		for _, ra := range a.MemoryAreas {
			if ra.Size == 0 {
				return fmt.Errorf("partition %q: zero-size area %q", a.Name, ra.Name)
			}
			for j, b := range c.Partitions {
				if i >= j {
					continue
				}
				for _, rb := range b.MemoryAreas {
					if ra.Overlaps(rb) && (ra.Perm&sparc.PermWrite != 0 || rb.Perm&sparc.PermWrite != 0) {
						return fmt.Errorf("writable overlap: %q/%s vs %q/%s", a.Name, ra.Name, b.Name, rb.Name)
					}
				}
			}
		}
	}
	for pi, plan := range c.Plans {
		if plan.ID != pi {
			return fmt.Errorf("plan %d: id %d out of order", pi, plan.ID)
		}
		if plan.MajorFrame <= 0 {
			return fmt.Errorf("plan %d: non-positive major frame", plan.ID)
		}
		prevEnd := Time(0)
		for si, s := range plan.Slots {
			if s.PartitionID < 0 || s.PartitionID >= len(c.Partitions) {
				return fmt.Errorf("plan %d slot %d: unknown partition %d", plan.ID, si, s.PartitionID)
			}
			if s.Duration <= 0 {
				return fmt.Errorf("plan %d slot %d: non-positive duration", plan.ID, si)
			}
			if s.Start < prevEnd {
				return fmt.Errorf("plan %d slot %d: overlaps previous slot", plan.ID, si)
			}
			if s.Start+s.Duration > plan.MajorFrame {
				return fmt.Errorf("plan %d slot %d: exceeds major frame", plan.ID, si)
			}
			prevEnd = s.Start + s.Duration
		}
	}
	seen := map[string]bool{}
	for _, ch := range c.Channels {
		if ch.Name == "" {
			return fmt.Errorf("channel with empty name")
		}
		if seen[ch.Name] {
			return fmt.Errorf("duplicate channel %q", ch.Name)
		}
		seen[ch.Name] = true
		if ch.MaxMsgSize == 0 {
			return fmt.Errorf("channel %q: zero MaxMsgSize", ch.Name)
		}
		if ch.Type == QueuingChannel && ch.MaxNoMsgs == 0 {
			return fmt.Errorf("channel %q: queuing channel with zero MaxNoMsgs", ch.Name)
		}
		for _, end := range [...]int{ch.Source, ch.Destination} {
			if end < 0 || end >= len(c.Partitions) {
				return fmt.Errorf("channel %q: unknown partition %d", ch.Name, end)
			}
		}
	}
	return nil
}

// Partition looks up a partition configuration by id.
func (c *Config) Partition(id int) (PartitionConfig, bool) {
	if id < 0 || id >= len(c.Partitions) {
		return PartitionConfig{}, false
	}
	return c.Partitions[id], true
}

// PartitionByName looks up a partition configuration by name.
func (c *Config) PartitionByName(name string) (PartitionConfig, bool) {
	for _, p := range c.Partitions {
		if p.Name == name {
			return p, true
		}
	}
	return PartitionConfig{}, false
}
