package xm

// --- Interrupt Management ---------------------------------------------------
//
// The kernel virtualises the IRQMP lines: each partition owns the hardware
// lines its configuration grants plus 32 extended (virtual) lines. All
// services validate masks and ranges — the paper's campaign raised no
// issues here.

// numHwIrqLines is the number of virtualisable hardware lines (IRQMP 1..15
// plus line 0 which is invalid, kept for mask arithmetic).
const numHwIrqLines = 16

// hwIrqMaskAll covers every valid hardware line.
const hwIrqMaskAll = uint32(1)<<numHwIrqLines - 1

// irqTypeHw/irqTypeExt select the line class for XM_route_irq.
const (
	irqTypeHw  uint32 = 0
	irqTypeExt uint32 = 1
)

// maxIrqVector is the first invalid trap vector for XM_route_irq.
const maxIrqVector uint32 = 256

// hcEnableIrqs implements XM_enable_irqs: unmask all lines the partition
// owns.
func (k *Kernel) hcEnableIrqs(caller *Partition) RetCode {
	caller.virqMask = ^uint32(0)
	return OK
}

// hcSetIrqMask implements XM_set_irqmask(hwIrqsMask, extIrqsMask): masks
// (disables) the selected lines. Hardware bits outside the partition's
// allocation are a permission error; extended lines are always the
// partition's own.
func (k *Kernel) hcSetIrqMask(caller *Partition, hwMask, extMask uint32) RetCode {
	if hwMask&^caller.allowedHwMask() != 0 {
		return PermError
	}
	caller.virqMask &^= extMask
	return OK
}

// hcClearIrqMask implements XM_clear_irqmask(hwIrqsMask, extIrqsMask):
// unmasks (enables) the selected lines.
func (k *Kernel) hcClearIrqMask(caller *Partition, hwMask, extMask uint32) RetCode {
	if hwMask&^caller.allowedHwMask() != 0 {
		return PermError
	}
	caller.virqMask |= extMask
	return OK
}

// hcSetIrqPend implements XM_set_irqpend(hwIrqMask, extIrqMask): a system
// service that injects pending interrupts (the FDIR partition uses it to
// exercise fault paths). Hardware bits must name real IRQMP lines.
func (k *Kernel) hcSetIrqPend(caller *Partition, hwMask, extMask uint32) RetCode {
	if !caller.System() {
		return PermError
	}
	if hwMask&^hwIrqMaskAll != 0 || hwMask&1 != 0 {
		return InvalidParam // line 0 does not exist on IRQMP
	}
	for line := 1; line < numHwIrqLines; line++ {
		if hwMask&(1<<uint(line)) != 0 {
			k.cov(NrSetIrqPend, 0) // hardware line injected
			k.machine.IRQ().Raise(line)
		}
	}
	for line := uint32(0); line < 32; line++ {
		if extMask&(1<<line) != 0 {
			k.cov(NrSetIrqPend, 1) // extended line injected
			caller.raiseVIRQ(line)
		}
	}
	return OK
}

// hcRouteIrq implements XM_route_irq(type, irq, vector): binds a line to a
// guest trap vector.
func (k *Kernel) hcRouteIrq(caller *Partition, typ, irq, vector uint32) RetCode {
	switch typ {
	case irqTypeHw:
		if irq >= numHwIrqLines || irq == 0 {
			return InvalidParam
		}
		if caller.allowedHwMask()&(1<<irq) == 0 {
			return PermError
		}
		k.cov(NrRouteIrq, 0)
	case irqTypeExt:
		if irq >= 32 {
			return InvalidParam
		}
		k.cov(NrRouteIrq, 1)
	default:
		return InvalidParam
	}
	if vector >= maxIrqVector {
		return InvalidParam
	}
	if caller.irqRoutes == nil {
		caller.irqRoutes = make(map[uint32]uint32)
	}
	caller.irqRoutes[typ<<8|irq] = vector
	return OK
}
