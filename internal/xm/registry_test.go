package xm

import (
	"strings"
	"testing"
)

// TestTableIIIHypercallInventory pins the category totals of the paper's
// Table III "Total Hypercalls" column.
func TestTableIIIHypercallInventory(t *testing.T) {
	want := map[Category]int{
		CatSystem:    3,
		CatPartition: 10,
		CatTime:      2,
		CatPlan:      2,
		CatIPC:       10,
		CatMemory:    2,
		CatHM:        5,
		CatTrace:     5,
		CatInterrupt: 5,
		CatMisc:      5,
		CatSparc:     12,
	}
	total := 0
	for cat, n := range want {
		got := len(ByCategory(cat))
		if got != n {
			t.Errorf("%s: %d hypercalls, want %d (Table III)", cat, got, n)
		}
		total += got
	}
	if total != 61 {
		t.Fatalf("total hypercalls = %d, want 61", total)
	}
	if len(Hypercalls()) != 61 {
		t.Fatalf("Hypercalls() = %d entries", len(Hypercalls()))
	}
}

// TestFig8ParameterlessShare pins Fig. 8: "just below 50 per cent of
// untested calls are hypercalls with no parameters". 10 of the 61 calls
// take no parameters.
func TestFig8ParameterlessShare(t *testing.T) {
	noParam := 0
	for _, s := range Hypercalls() {
		if s.NumParams() == 0 {
			noParam++
		}
	}
	if noParam != 10 {
		t.Fatalf("parameter-less hypercalls = %d, want 10", noParam)
	}
}

func TestHypercallNumbersDenseAndUnique(t *testing.T) {
	seen := map[Nr]string{}
	for _, s := range Hypercalls() {
		if s.Nr < 1 || s.Nr > NumHypercalls {
			t.Errorf("%s: number %d out of range", s.Name, s.Nr)
		}
		if prev, dup := seen[s.Nr]; dup {
			t.Errorf("number %d used by %s and %s", s.Nr, prev, s.Name)
		}
		seen[s.Nr] = s.Name
	}
	if len(seen) != NumHypercalls {
		t.Fatalf("numbers are not dense: %d distinct of %d", len(seen), NumHypercalls)
	}
}

func TestHypercallNamingConvention(t *testing.T) {
	for _, s := range Hypercalls() {
		if !strings.HasPrefix(s.Name, "XM_") {
			t.Errorf("%s: hypercall names carry the XM_ prefix", s.Name)
		}
		if s.ReturnType != "xm_s32_t" {
			t.Errorf("%s: return type %q, want xm_s32_t", s.Name, s.ReturnType)
		}
		for _, p := range s.Params {
			if p.Name == "" {
				t.Errorf("%s: unnamed parameter", s.Name)
			}
			if p.Pointer != (p.Type == "void*") {
				t.Errorf("%s/%s: pointer flag inconsistent with type %q", s.Name, p.Name, p.Type)
			}
		}
	}
}

func TestHypercallParamTypesAreTableITypes(t *testing.T) {
	valid := map[string]bool{"void*": true}
	for _, dt := range DataTypes() {
		valid[dt.Name] = true
		for _, ext := range strings.Fields(dt.Extended) {
			if ext != "-" {
				valid[ext] = true
			}
		}
	}
	for _, s := range Hypercalls() {
		for _, p := range s.Params {
			if !valid[p.Type] {
				t.Errorf("%s/%s: type %q is not a Table I type", s.Name, p.Name, p.Type)
			}
		}
	}
}

func TestLookupAndLookupName(t *testing.T) {
	s, ok := Lookup(NrSetTimer)
	if !ok || s.Name != "XM_set_timer" || len(s.Params) != 3 {
		t.Fatalf("Lookup(NrSetTimer) = %+v %v", s, ok)
	}
	s2, ok := LookupName("XM_set_timer")
	if !ok || s2.Nr != NrSetTimer {
		t.Fatalf("LookupName = %+v %v", s2, ok)
	}
	if _, ok := Lookup(0); ok {
		t.Fatal("Lookup(0) succeeded")
	}
	if _, ok := LookupName("XM_nope"); ok {
		t.Fatal("LookupName(XM_nope) succeeded")
	}
}

func TestSystemOnlyFlags(t *testing.T) {
	// The privileged services of the reference manual.
	sysOnly := []string{
		"XM_halt_system", "XM_reset_system", "XM_get_system_status",
		"XM_halt_partition", "XM_reset_partition", "XM_suspend_partition",
		"XM_resume_partition", "XM_shutdown_partition", "XM_get_partition_status",
		"XM_switch_sched_plan", "XM_update_page32",
		"XM_hm_read", "XM_hm_seek", "XM_hm_status", "XM_hm_open", "XM_hm_reset",
		"XM_multicall",
	}
	want := map[string]bool{}
	for _, n := range sysOnly {
		want[n] = true
	}
	for _, s := range Hypercalls() {
		if s.SystemOnly != want[s.Name] {
			t.Errorf("%s: SystemOnly = %v, want %v", s.Name, s.SystemOnly, want[s.Name])
		}
	}
}

// TestTableIDataTypes pins the paper's Table I rows.
func TestTableIDataTypes(t *testing.T) {
	dts := DataTypes()
	byName := map[string]DataType{}
	for _, dt := range dts {
		byName[dt.Name] = dt
	}
	cases := []struct {
		name string
		bits int
		c    string
	}{
		{"xm_u8_t", 8, "unsigned char"},
		{"xm_s8_t", 8, "signed char"},
		{"xm_u16_t", 16, "unsigned short"},
		{"xm_s16_t", 16, "signed short"},
		{"xm_u32_t", 32, "unsigned int"},
		{"xm_s32_t", 32, "signed int"},
		{"xm_u64_t", 64, "unsigned long long"},
		{"xm_s64_t", 64, "signed long long"},
	}
	for _, c := range cases {
		dt, ok := byName[c.name]
		if !ok {
			t.Errorf("Table I type %s missing", c.name)
			continue
		}
		if dt.Bits != c.bits || dt.C != c.c {
			t.Errorf("%s: %d bits %q, want %d bits %q", c.name, dt.Bits, dt.C, c.bits, c.c)
		}
	}
	// Extended aliases of Table I.
	if !strings.Contains(byName["xm_u32_t"].Extended, "xmAddress_t") {
		t.Error("xm_u32_t must alias xmAddress_t")
	}
	if !strings.Contains(byName["xm_s64_t"].Extended, "xmTime_t") {
		t.Error("xm_s64_t must alias xmTime_t")
	}
}

func TestRetCodeStrings(t *testing.T) {
	for rc, want := range map[RetCode]string{
		OK:               "XM_OK",
		NoAction:         "XM_NO_ACTION",
		UnknownHypercall: "XM_UNKNOWN_HYPERCALL",
		InvalidParam:     "XM_INVALID_PARAM",
		PermError:        "XM_PERM_ERROR",
		InvalidConfig:    "XM_INVALID_CONFIG",
		InvalidMode:      "XM_INVALID_MODE",
		NotAvailable:     "XM_NOT_AVAILABLE",
		OpNotAllowed:     "XM_OP_NOT_ALLOWED",
	} {
		if rc.String() != want {
			t.Errorf("RetCode(%d).String() = %q, want %q", rc, rc.String(), want)
		}
	}
	if RetCode(3).String() != "XM_OK+3" {
		t.Errorf("positive retcode renders as %q", RetCode(3).String())
	}
	if RetCode(-99).String() != "XM_ERR(-99)" {
		t.Errorf("unknown negative renders as %q", RetCode(-99).String())
	}
}

func TestConfigValidationErrors(t *testing.T) {
	mk := func(mut func(*Config)) error {
		cfg := testConfig()
		mut(&cfg)
		return cfg.Validate()
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"no plans", func(c *Config) { c.Plans = nil }},
		{"bad slot partition", func(c *Config) { c.Plans[0].Slots[0].PartitionID = 9 }},
		{"slot past frame", func(c *Config) { c.Plans[0].Slots[1].Duration = 300000 }},
		{"overlapping slots", func(c *Config) { c.Plans[0].Slots[1].Start = 10000 }},
		{"zero duration", func(c *Config) { c.Plans[0].Slots[0].Duration = 0 }},
		{"zero msg size", func(c *Config) { c.Channels[0].MaxMsgSize = 0 }},
		{"queuing no depth", func(c *Config) { c.Channels[1].MaxNoMsgs = 0 }},
		{"dup channel", func(c *Config) { c.Channels[1].Name = "tm" }},
		{"bad channel endpoint", func(c *Config) { c.Channels[0].Source = 7 }},
		{"unnamed partition", func(c *Config) { c.Partitions[0].Name = "" }},
		{"no memory areas", func(c *Config) { c.Partitions[0].MemoryAreas = nil }},
		{"zero-size area", func(c *Config) { c.Partitions[0].MemoryAreas[0].Size = 0 }},
		{"ids out of order", func(c *Config) { c.Partitions[0].ID = 5 }},
	}
	for _, c := range cases {
		if err := mk(c.mut); err == nil {
			t.Errorf("%s: Validate accepted a broken config", c.name)
		}
	}
	base := testConfig()
	if err := base.Validate(); err != nil {
		t.Fatalf("baseline config invalid: %v", err)
	}
}

func TestConfigLookups(t *testing.T) {
	cfg := testConfig()
	if p, ok := cfg.Partition(1); !ok || p.Name != "SYS" {
		t.Fatalf("Partition(1) = %+v %v", p, ok)
	}
	if _, ok := cfg.Partition(5); ok {
		t.Fatal("Partition(5) found")
	}
	if p, ok := cfg.PartitionByName("USER"); !ok || p.ID != 0 {
		t.Fatalf("PartitionByName = %+v %v", p, ok)
	}
	if _, ok := cfg.PartitionByName("NOPE"); ok {
		t.Fatal("PartitionByName(NOPE) found")
	}
}

func TestFaultSetPatched(t *testing.T) {
	if LegacyFaults().Patched() {
		t.Fatal("LegacyFaults reports patched")
	}
	if !PatchedFaults().Patched() {
		t.Fatal("PatchedFaults reports unpatched")
	}
	half := PatchedFaults()
	half.MulticallRemoved = false
	if half.Patched() {
		t.Fatal("partial fault set reports patched")
	}
}
