package xm

import (
	"fmt"
	"sort"
)

// Nr is a hypercall number. Numbers are a stable ABI: they are what a
// multicall batch buffer encodes.
type Nr uint32

// Category groups hypercalls as in the paper's Table III.
type Category string

// The 11 hypercall categories of Table III.
const (
	CatSystem    Category = "System Management"
	CatPartition Category = "Partition Management"
	CatTime      Category = "Time Management"
	CatPlan      Category = "Plan Management"
	CatIPC       Category = "Inter-Partition Communication"
	CatMemory    Category = "Memory Management"
	CatHM        Category = "Health Monitor Management"
	CatTrace     Category = "Trace Management"
	CatInterrupt Category = "Interrupt Management"
	CatMisc      Category = "Miscellaneous"
	CatSparc     Category = "Sparc V8 Specific"
)

// Categories returns the categories in Table III row order.
func Categories() []Category {
	return []Category{
		CatSystem, CatPartition, CatTime, CatPlan, CatIPC, CatMemory,
		CatHM, CatTrace, CatInterrupt, CatMisc, CatSparc,
	}
}

// Hypercall numbers. The grouping by tens mirrors the category layout.
const (
	// System Management
	NrHaltSystem      Nr = 1
	NrResetSystem     Nr = 2
	NrGetSystemStatus Nr = 3
	// Partition Management
	NrHaltPartition      Nr = 4
	NrResetPartition     Nr = 5
	NrSuspendPartition   Nr = 6
	NrResumePartition    Nr = 7
	NrShutdownPartition  Nr = 8
	NrGetPartitionStatus Nr = 9
	NrIdleSelf           Nr = 10
	NrSuspendSelf        Nr = 11
	NrGetPartitionMmap   Nr = 12
	NrSetPartitionOpMode Nr = 13
	// Time Management
	NrGetTime  Nr = 14
	NrSetTimer Nr = 15
	// Plan Management
	NrSwitchSchedPlan Nr = 16
	NrGetPlanStatus   Nr = 17
	// Inter-Partition Communication
	NrCreateSamplingPort Nr = 18
	NrWriteSamplingMsg   Nr = 19
	NrReadSamplingMsg    Nr = 20
	NrCreateQueuingPort  Nr = 21
	NrSendQueuingMsg     Nr = 22
	NrReceiveQueuingMsg  Nr = 23
	NrGetPortStatus      Nr = 24
	NrClosePort          Nr = 25
	NrFlushPort          Nr = 26
	NrGetPortInfo        Nr = 27
	// Memory Management
	NrMemoryCopy   Nr = 28
	NrUpdatePage32 Nr = 29
	// Health Monitor Management
	NrHmRead   Nr = 30
	NrHmSeek   Nr = 31
	NrHmStatus Nr = 32
	NrHmOpen   Nr = 33
	NrHmReset  Nr = 34
	// Trace Management
	NrTraceEvent  Nr = 35
	NrTraceRead   Nr = 36
	NrTraceSeek   Nr = 37
	NrTraceStatus Nr = 38
	NrTraceOpen   Nr = 39
	// Interrupt Management
	NrEnableIrqs   Nr = 40
	NrSetIrqMask   Nr = 41
	NrClearIrqMask Nr = 42
	NrSetIrqPend   Nr = 43
	NrRouteIrq     Nr = 44
	// Miscellaneous
	NrMulticall    Nr = 45
	NrWriteConsole Nr = 46
	NrGetGidByName Nr = 47
	NrFlushCache   Nr = 48
	NrGetParams    Nr = 49
	// Sparc V8 Specific
	NrSparcAtomicAdd   Nr = 50
	NrSparcAtomicAnd   Nr = 51
	NrSparcAtomicOr    Nr = 52
	NrSparcInPort      Nr = 53
	NrSparcOutPort     Nr = 54
	NrSparcGetPsr      Nr = 55
	NrSparcSetPsr      Nr = 56
	NrSparcWriteTbr    Nr = 57
	NrSparcFlushRegWin Nr = 58
	NrSparcEnableTraps Nr = 59
	NrSparcDisableTrap Nr = 60
	NrSparcIFlush      Nr = 61

	// NumHypercalls is the total of Table III.
	NumHypercalls = 61
)

// Param describes one formal parameter of a hypercall: its name and the XM
// data type it carries across the ABI (Table I names, or "void*").
type Param struct {
	Name    string
	Type    string
	Pointer bool
}

// Spec is the interface metadata of one hypercall — everything the API
// Header XML of paper Fig. 2 captures, plus the category and privilege
// level needed by the campaign and by the kernel dispatcher.
type Spec struct {
	Nr         Nr
	Name       string
	Category   Category
	SystemOnly bool // only succeeds when invoked from a system partition
	Params     []Param
	ReturnType string
}

// NumParams returns the number of formal parameters.
func (s Spec) NumParams() int { return len(s.Params) }

func p(name, typ string) Param { return Param{Name: name, Type: typ} }
func pp(name string) Param     { return Param{Name: name, Type: "void*", Pointer: true} }
func ret(s Spec) Spec          { s.ReturnType = "xm_s32_t"; return s }
func sys(s Spec) Spec          { s.SystemOnly = true; return s }
func spec(nr Nr, name string, cat Category, params ...Param) Spec {
	return ret(Spec{Nr: nr, Name: name, Category: cat, Params: params})
}

// registry is the authoritative hypercall table. It drives the kernel
// dispatcher, the API-Header XML emitter, and the Table III reproduction.
var registry = []Spec{
	// System Management
	sys(spec(NrHaltSystem, "XM_halt_system", CatSystem)),
	sys(spec(NrResetSystem, "XM_reset_system", CatSystem, p("mode", "xm_u32_t"))),
	sys(spec(NrGetSystemStatus, "XM_get_system_status", CatSystem, pp("status"))),
	// Partition Management
	sys(spec(NrHaltPartition, "XM_halt_partition", CatPartition, p("partitionId", "xm_s32_t"))),
	sys(spec(NrResetPartition, "XM_reset_partition", CatPartition,
		p("partitionId", "xm_s32_t"), p("resetMode", "xm_u32_t"), p("status", "xm_u32_t"))),
	sys(spec(NrSuspendPartition, "XM_suspend_partition", CatPartition, p("partitionId", "xm_s32_t"))),
	sys(spec(NrResumePartition, "XM_resume_partition", CatPartition, p("partitionId", "xm_s32_t"))),
	sys(spec(NrShutdownPartition, "XM_shutdown_partition", CatPartition, p("partitionId", "xm_s32_t"))),
	sys(spec(NrGetPartitionStatus, "XM_get_partition_status", CatPartition,
		p("partitionId", "xm_s32_t"), pp("status"))),
	spec(NrIdleSelf, "XM_idle_self", CatPartition),
	spec(NrSuspendSelf, "XM_suspend_self", CatPartition),
	spec(NrGetPartitionMmap, "XM_get_partition_mmap", CatPartition, pp("mmap")),
	spec(NrSetPartitionOpMode, "XM_set_partition_opmode", CatPartition, p("opMode", "xm_u32_t")),
	// Time Management
	spec(NrGetTime, "XM_get_time", CatTime, p("clockId", "xm_u32_t"), pp("time")),
	spec(NrSetTimer, "XM_set_timer", CatTime,
		p("clockId", "xm_u32_t"), p("absTime", "xmTime_t"), p("interval", "xmTime_t")),
	// Plan Management
	sys(spec(NrSwitchSchedPlan, "XM_switch_sched_plan", CatPlan,
		p("planId", "xm_u32_t"), pp("prevPlanId"))),
	spec(NrGetPlanStatus, "XM_get_plan_status", CatPlan, pp("status")),
	// Inter-Partition Communication
	spec(NrCreateSamplingPort, "XM_create_sampling_port", CatIPC,
		pp("portName"), p("maxMsgSize", "xm_u32_t"), p("direction", "xm_u32_t")),
	spec(NrWriteSamplingMsg, "XM_write_sampling_message", CatIPC,
		p("portId", "xm_s32_t"), pp("msgPtr"), p("msgSize", "xm_u32_t")),
	spec(NrReadSamplingMsg, "XM_read_sampling_message", CatIPC,
		p("portId", "xm_s32_t"), pp("msgPtr"), p("msgSize", "xm_u32_t")),
	spec(NrCreateQueuingPort, "XM_create_queuing_port", CatIPC,
		pp("portName"), p("maxNoMsgs", "xm_u32_t"), p("maxMsgSize", "xm_u32_t"), p("direction", "xm_u32_t")),
	spec(NrSendQueuingMsg, "XM_send_queuing_message", CatIPC,
		p("portId", "xm_s32_t"), pp("msgPtr"), p("msgSize", "xm_u32_t")),
	spec(NrReceiveQueuingMsg, "XM_receive_queuing_message", CatIPC,
		p("portId", "xm_s32_t"), pp("msgPtr"), p("msgSize", "xm_u32_t")),
	spec(NrGetPortStatus, "XM_get_port_status", CatIPC, p("portId", "xm_s32_t"), pp("status")),
	spec(NrClosePort, "XM_close_port", CatIPC, p("portId", "xm_s32_t")),
	spec(NrFlushPort, "XM_flush_port", CatIPC, p("portId", "xm_s32_t")),
	spec(NrGetPortInfo, "XM_get_port_info", CatIPC, pp("portName"), pp("info")),
	// Memory Management
	spec(NrMemoryCopy, "XM_memory_copy", CatMemory,
		p("destAddr", "xmAddress_t"), p("srcAddr", "xmAddress_t"), p("size", "xmSize_t")),
	sys(spec(NrUpdatePage32, "XM_update_page32", CatMemory,
		p("pageAddr", "xmAddress_t"), p("value", "xm_u32_t"))),
	// Health Monitor Management
	sys(spec(NrHmRead, "XM_hm_read", CatHM, pp("hmLogPtr"), p("count", "xm_u32_t"))),
	sys(spec(NrHmSeek, "XM_hm_seek", CatHM, p("offset", "xm_s32_t"), p("whence", "xm_u32_t"))),
	sys(spec(NrHmStatus, "XM_hm_status", CatHM, pp("status"))),
	sys(spec(NrHmOpen, "XM_hm_open", CatHM)),
	sys(spec(NrHmReset, "XM_hm_reset", CatHM)),
	// Trace Management
	spec(NrTraceEvent, "XM_trace_event", CatTrace, p("bitmask", "xm_u32_t"), pp("event")),
	spec(NrTraceRead, "XM_trace_read", CatTrace, p("id", "xm_s32_t"), pp("event")),
	spec(NrTraceSeek, "XM_trace_seek", CatTrace,
		p("id", "xm_s32_t"), p("offset", "xm_s32_t"), p("whence", "xm_u32_t")),
	spec(NrTraceStatus, "XM_trace_status", CatTrace, p("id", "xm_s32_t"), pp("status")),
	spec(NrTraceOpen, "XM_trace_open", CatTrace, p("id", "xm_s32_t")),
	// Interrupt Management
	spec(NrEnableIrqs, "XM_enable_irqs", CatInterrupt),
	spec(NrSetIrqMask, "XM_set_irqmask", CatInterrupt,
		p("hwIrqsMask", "xm_u32_t"), p("extIrqsMask", "xm_u32_t")),
	spec(NrClearIrqMask, "XM_clear_irqmask", CatInterrupt,
		p("hwIrqsMask", "xm_u32_t"), p("extIrqsMask", "xm_u32_t")),
	spec(NrSetIrqPend, "XM_set_irqpend", CatInterrupt,
		p("hwIrqMask", "xm_u32_t"), p("extIrqMask", "xm_u32_t")),
	spec(NrRouteIrq, "XM_route_irq", CatInterrupt,
		p("type", "xm_u32_t"), p("irq", "xm_u32_t"), p("vector", "xm_u32_t")),
	// Miscellaneous
	sys(spec(NrMulticall, "XM_multicall", CatMisc, pp("startAddr"), pp("endAddr"))),
	spec(NrWriteConsole, "XM_write_console", CatMisc, pp("buffer"), p("length", "xm_u32_t")),
	spec(NrGetGidByName, "XM_get_gid_by_name", CatMisc, pp("name"), p("entity", "xm_u32_t")),
	spec(NrFlushCache, "XM_flush_cache", CatMisc, p("cache", "xm_u32_t")),
	spec(NrGetParams, "XM_get_params", CatMisc, pp("params")),
	// Sparc V8 Specific
	spec(NrSparcAtomicAdd, "XM_sparc_atomic_add", CatSparc, pp("dest"), p("value", "xm_u32_t")),
	spec(NrSparcAtomicAnd, "XM_sparc_atomic_and", CatSparc, pp("dest"), p("mask", "xm_u32_t")),
	spec(NrSparcAtomicOr, "XM_sparc_atomic_or", CatSparc, pp("dest"), p("mask", "xm_u32_t")),
	spec(NrSparcInPort, "XM_sparc_inport", CatSparc, p("port", "xm_u32_t"), pp("value")),
	spec(NrSparcOutPort, "XM_sparc_outport", CatSparc, p("port", "xm_u32_t"), p("value", "xm_u32_t")),
	spec(NrSparcGetPsr, "XM_sparc_get_psr", CatSparc),
	spec(NrSparcSetPsr, "XM_sparc_set_psr", CatSparc, p("psr", "xm_u32_t")),
	spec(NrSparcWriteTbr, "XM_sparc_write_tbr", CatSparc, p("tbr", "xm_u32_t")),
	spec(NrSparcFlushRegWin, "XM_sparc_flush_regwin", CatSparc),
	spec(NrSparcEnableTraps, "XM_sparc_enable_traps", CatSparc),
	spec(NrSparcDisableTrap, "XM_sparc_disable_traps", CatSparc),
	spec(NrSparcIFlush, "XM_sparc_iflush", CatSparc, p("addr", "xmAddress_t")),
}

// byNr indexes the registry for dispatch.
var byNr = func() map[Nr]*Spec {
	m := make(map[Nr]*Spec, len(registry))
	for i := range registry {
		s := &registry[i]
		if _, dup := m[s.Nr]; dup {
			panic(fmt.Sprintf("duplicate hypercall nr %d", s.Nr))
		}
		m[s.Nr] = s
	}
	return m
}()

// byName indexes the registry by hypercall name.
var byName = func() map[string]*Spec {
	m := make(map[string]*Spec, len(registry))
	for i := range registry {
		m[registry[i].Name] = &registry[i]
	}
	return m
}()

// Hypercalls returns all hypercall specs ordered by number.
func Hypercalls() []Spec {
	out := append([]Spec(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Nr < out[j].Nr })
	return out
}

// Lookup returns the spec for a hypercall number.
func Lookup(nr Nr) (Spec, bool) {
	s, ok := byNr[nr]
	if !ok {
		return Spec{}, false
	}
	return *s, true
}

// LookupName returns the spec for a hypercall name (e.g. "XM_set_timer").
func LookupName(name string) (Spec, bool) {
	s, ok := byName[name]
	if !ok {
		return Spec{}, false
	}
	return *s, true
}

// ByCategory returns the specs of one category ordered by number.
func ByCategory(cat Category) []Spec {
	var out []Spec
	for _, s := range Hypercalls() {
		if s.Category == cat {
			out = append(out, s)
		}
	}
	return out
}
