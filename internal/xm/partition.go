package xm

import (
	"fmt"

	"xmrobust/internal/sparc"
)

// PState is the execution state of a partition.
type PState int

// Partition states.
const (
	PStateBoot PState = iota
	PStateNormal
	PStateIdle // parked until its next slot
	PStateSuspended
	PStateHalted
	PStateShutdown
)

var pstateNames = [...]string{
	PStateBoot:      "BOOT",
	PStateNormal:    "NORMAL",
	PStateIdle:      "IDLE",
	PStateSuspended: "SUSPENDED",
	PStateHalted:    "HALTED",
	PStateShutdown:  "SHUTDOWN",
}

func (s PState) String() string {
	if s >= 0 && int(s) < len(pstateNames) {
		return pstateNames[s]
	}
	return fmt.Sprintf("PSTATE(%d)", int(s))
}

// Runnable reports whether a partition in this state receives CPU time in
// its slot.
func (s PState) Runnable() bool { return s == PStateBoot || s == PStateNormal || s == PStateIdle }

// Env is the view the kernel offers a guest program while it executes
// inside its slot: hypercall invocation, memory access through the
// partition's MMU view, and virtual-time accounting. It is the Go analogue
// of the XAL runtime environment partition code is written against.
type Env interface {
	// PartitionID returns the caller's partition id.
	PartitionID() int
	// Hypercall invokes a kernel service. Missing arguments are zero.
	Hypercall(nr Nr, args ...uint64) RetCode
	// Read copies size bytes from the partition's address space. ok is
	// false (and the access is reported to the health monitor) if the
	// access violates spatial separation.
	Read(addr sparc.Addr, size uint32) (data []byte, ok bool)
	// Write copies data into the partition's address space.
	Write(addr sparc.Addr, data []byte) bool
	// Compute burns d microseconds of the slot on guest computation.
	Compute(d Time)
	// Now returns current machine time.
	Now() Time
	// SlotRemaining returns the budget left in the current slot.
	SlotRemaining() Time
}

// ReaderInto is an optional capability of Env implementations: an
// allocation-free Read into a caller-owned buffer, with the same
// spatial-violation semantics. Guest runtimes discover it by type
// assertion and fall back to Read when absent.
type ReaderInto interface {
	ReadInto(addr sparc.Addr, buf []byte) bool
}

// Hypercaller4 is an optional capability of Env implementations: a
// fixed-arity Hypercall whose arguments stay off the heap. Semantics
// are identical to Hypercall with trailing zeros for unused arguments.
type Hypercaller4 interface {
	Hypercall4(nr Nr, a0, a1, a2, a3 uint64) RetCode
}

// Program is guest software hosted in a partition. The scheduler calls
// Step repeatedly during the partition's slot; a false return parks the
// partition until its next slot. Boot runs at (re)boot before the first
// Step of a partition incarnation.
type Program interface {
	Boot(env Env)
	Step(env Env) bool
}

// vTimer is one armed virtual timer of a partition.
type vTimer struct {
	armed    bool
	expiry   Time // absolute, in the owning clock's timebase
	interval Time // 0: one-shot
	fires    uint64
}

// Partition is the runtime state of one partition.
type Partition struct {
	cfg   PartitionConfig
	state PState
	space *sparc.Space

	// bootCount counts incarnations (boot + every reset).
	bootCount uint32
	// booted marks whether Boot ran for the current incarnation.
	booted bool
	// program is the hosted guest software (may be nil: an empty
	// partition idles).
	program Program

	// execClock is the accumulated execution time (XM_EXEC_CLOCK).
	execClock Time
	// timers[0] runs on the hardware clock, timers[1] on the exec clock.
	timers [2]vTimer
	// pendingVIRQs is the virtual interrupt pending mask.
	pendingVIRQs uint32
	virqMask     uint32
	// psr/tbr model the Sparc V8 privileged registers the sparc-specific
	// hypercalls touch.
	psr, tbr uint32
	// trace is the partition's trace stream (Trace Management services).
	trace traceStream
	// irqRoutes records XM_route_irq programming: line -> vector.
	irqRoutes map[uint32]uint32
	// haltDetail records why the partition halted/suspended.
	haltDetail string
}

func newPartition(cfg PartitionConfig) *Partition {
	p := &Partition{cfg: cfg}
	p.rebuildSpace()
	return p
}

func (p *Partition) rebuildSpace() {
	if p.space == nil {
		p.space = sparc.NewSpace(fmt.Sprintf("P%d:%s", p.cfg.ID, p.cfg.Name), p.cfg.MemoryAreas...)
		return
	}
	p.space.Rebuild(p.cfg.MemoryAreas...)
}

// ID returns the partition id.
func (p *Partition) ID() int { return p.cfg.ID }

// Name returns the configured partition name.
func (p *Partition) Name() string { return p.cfg.Name }

// System reports whether this is a system partition.
func (p *Partition) System() bool { return p.cfg.System }

// State returns the current partition state.
func (p *Partition) State() PState { return p.state }

// BootCount returns the number of incarnations so far.
func (p *Partition) BootCount() uint32 { return p.bootCount }

// ExecClock returns accumulated execution time.
func (p *Partition) ExecClock() Time { return p.execClock }

// HaltDetail returns the reason for the last halt/suspend, if any.
func (p *Partition) HaltDetail() string { return p.haltDetail }

// Space returns the partition's MMU view.
func (p *Partition) Space() *sparc.Space { return p.space }

// dataArea returns the first writable memory area — where the guest
// runtime keeps its data, and where the fuzz harness places test buffers.
func (p *Partition) dataArea() (sparc.Region, bool) {
	for _, r := range p.cfg.MemoryAreas {
		if r.Perm&sparc.PermWrite != 0 {
			return r, true
		}
	}
	return sparc.Region{}, false
}

// reset re-initialises the partition for a new incarnation. A cold reset
// also clears the execution clock and pending interrupts.
func (p *Partition) reset(cold bool) {
	p.state = PStateBoot
	p.booted = false
	p.bootCount++
	p.timers = [2]vTimer{}
	p.haltDetail = ""
	p.irqRoutes = nil
	if cold {
		p.execClock = 0
		p.pendingVIRQs = 0
		p.virqMask = 0
		p.psr, p.tbr = 0, 0
		p.trace = traceStream{}
	}
}

// halt stops the partition until an external reset.
func (p *Partition) halt(detail string) {
	p.state = PStateHalted
	p.haltDetail = detail
}

// suspend stops the partition until XM_resume_partition.
func (p *Partition) suspend(detail string) {
	p.state = PStateSuspended
	p.haltDetail = detail
}

// raiseVIRQ marks a virtual interrupt pending.
func (p *Partition) raiseVIRQ(line uint32) {
	if line < 32 {
		p.pendingVIRQs |= 1 << line
	}
}

// allowedHwMask returns the mask of hardware IRQ lines the configuration
// grants this partition.
func (p *Partition) allowedHwMask() uint32 {
	var m uint32
	for _, l := range p.cfg.HwIrqLines {
		if l >= 0 && l < 32 {
			m |= 1 << uint(l)
		}
	}
	return m
}

// vtimerVIRQ is the virtual interrupt line timers fire on.
const vtimerVIRQ = 0

// PartitionStatus is the host-side snapshot of a partition, also
// serialised to guest memory by XM_get_partition_status.
type PartitionStatus struct {
	ID         int
	Name       string
	State      PState
	BootCount  uint32
	ExecClock  Time
	Pending    uint32
	HaltDetail string
}

// status snapshots the partition.
func (p *Partition) status() PartitionStatus {
	return PartitionStatus{
		ID: p.cfg.ID, Name: p.cfg.Name, State: p.state,
		BootCount: p.bootCount, ExecClock: p.execClock,
		Pending: p.pendingVIRQs, HaltDetail: p.haltDetail,
	}
}
