package xm

import "xmrobust/internal/sparc"

// --- Time Management ------------------------------------------------------

// hcGetTime implements XM_get_time(clockId, time*): writes the 64-bit
// microsecond value of the selected clock into guest memory.
func (k *Kernel) hcGetTime(caller *Partition, clockID uint32, ptr sparc.Addr) RetCode {
	var t Time
	switch clockID {
	case HwClock:
		k.cov(NrGetTime, 0)
		t = k.machine.Now()
	case ExecClock:
		k.cov(NrGetTime, 1)
		t = caller.execClock
	default:
		return InvalidParam
	}
	if !k.guestWritable(caller, ptr, 8) {
		return InvalidParam
	}
	if !k.copyToGuest(caller, ptr, be64(uint64(t))) {
		return InvalidParam
	}
	return OK
}

// hcSetTimer implements XM_set_timer(clockId, absTime, interval): arms the
// caller's virtual timer on the selected clock, one-shot for interval==0,
// periodic otherwise.
//
// Paper issues TMR-1..TMR-3 live here:
//
//   - TMR-1 — the legacy kernel has no minimum interval. With a 1µs
//     period on the hardware clock "the next execution time is always
//     expired by the time it is checked and the timer handler is invoked
//     again", a recursion that overflows the kernel stack and halts XM.
//     The patched kernel rejects intervals below MinTimerInterval (50µs).
//
//   - TMR-2 — the same storm on the execution clock races the context
//     switch; the paper observed the resulting timer trap crashing the
//     TSIM simulator itself. The machine models it as a simulator crash.
//
//   - TMR-3 — the legacy kernel does not detect negative intervals and
//     "incorrectly returned a successful operation code". The patched
//     kernel returns XM_INVALID_PARAM.
func (k *Kernel) hcSetTimer(caller *Partition, clockID uint32, absTime, interval int64) RetCode {
	if clockID != HwClock && clockID != ExecClock {
		return InvalidParam
	}
	if absTime == 0 {
		// Disarm, per the reference manual.
		k.cov(NrSetTimer, 0)
		caller.timers[clockID].armed = false
		if clockID == HwClock {
			k.reprogramHwTimer()
		}
		return OK
	}
	if k.faults.TimerNegativeCheck && (absTime < 0 || interval < 0) {
		return InvalidParam
	}
	if k.faults.TimerMinInterval && interval > 0 && Time(interval) < MinTimerInterval {
		return InvalidParam
	}
	// Legacy path: a negative interval arms a de-facto one-shot (the
	// periodic re-arm computation wraps into the past and the timer is
	// dropped after its first expiry) — and the call reports success.
	iv := Time(interval)
	if interval < 0 {
		k.cov(NrSetTimer, 1) // legacy negative-interval de-facto one-shot (TMR-3)
		iv = 0
	}
	switch clockID {
	case HwClock:
		k.cov(NrSetTimer, 2)
		k.armHwTimer(caller, Time(absTime), iv)
	case ExecClock:
		k.cov(NrSetTimer, 3)
		caller.timers[1] = vTimer{armed: true, expiry: Time(absTime), interval: iv}
	}
	return OK
}
