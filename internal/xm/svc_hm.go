package xm

import "xmrobust/internal/sparc"

// --- Health Monitor Management --------------------------------------------

// hmEntrySize is the guest-serialised size of one health-monitor log
// record: seq, event, partition, action (words) followed by the 64-bit
// timestamp.
const hmEntrySize = 24

// serializeHMEntry encodes one log record for guest consumption.
func serializeHMEntry(e HMLogEntry) []byte {
	pid := int32(e.PartitionID)
	if e.SystemScope {
		pid = -1
	}
	img := packWords(e.Seq, uint32(e.Event), uint32(pid), uint32(e.Action))
	return append(img, be64(uint64(e.Time))...)
}

// hcHmRead implements XM_hm_read(hmLogPtr, count): copies up to count log
// entries from the health-monitor read cursor into guest memory and
// returns the number copied.
func (k *Kernel) hcHmRead(caller *Partition, ptr sparc.Addr, count uint32) RetCode {
	if count == 0 {
		return NoAction
	}
	avail := uint32(len(k.hm.log) - k.hm.readCursor)
	if avail == 0 {
		return NoAction
	}
	n := count
	if n > avail {
		k.cov(NrHmRead, 0) // read clamped to the remaining log
		n = avail
	}
	if !k.guestWritable(caller, ptr, n*hmEntrySize) {
		return InvalidParam
	}
	img := make([]byte, 0, n*hmEntrySize)
	for i := uint32(0); i < n; i++ {
		img = append(img, serializeHMEntry(k.hm.log[k.hm.readCursor+int(i)])...)
	}
	if !k.copyToGuest(caller, ptr, img) {
		return InvalidParam
	}
	k.hm.readCursor += int(n)
	k.charge(Time(n))
	return RetCode(n)
}

// hcHmSeek implements XM_hm_seek(offset, whence): repositions the
// health-monitor read cursor and returns the new position.
func (k *Kernel) hcHmSeek(caller *Partition, offset int32, whence uint32) RetCode {
	var base int
	switch whence {
	case SeekSet:
		k.cov(NrHmSeek, 0)
		base = 0
	case SeekCur:
		k.cov(NrHmSeek, 1)
		base = k.hm.readCursor
	case SeekEnd:
		k.cov(NrHmSeek, 2)
		base = len(k.hm.log)
	default:
		return InvalidParam
	}
	pos := base + int(offset)
	if pos < 0 || pos > len(k.hm.log) {
		return InvalidParam
	}
	k.hm.readCursor = pos
	return RetCode(pos)
}

// hmStatusSize is the guest-visible size of the HM status record.
const hmStatusSize = 16

// hcHmStatus implements XM_hm_status(status*).
func (k *Kernel) hcHmStatus(caller *Partition, ptr sparc.Addr) RetCode {
	if !k.guestWritable(caller, ptr, hmStatusSize) {
		return InvalidParam
	}
	img := packWords(k.hm.seq, uint32(len(k.hm.log)), k.hm.dropped, uint32(k.hm.readCursor))
	if !k.copyToGuest(caller, ptr, img) {
		return InvalidParam
	}
	return OK
}
