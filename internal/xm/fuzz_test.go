package xm

// Property-based robustness tests of the kernel itself: whatever a
// *normal* (non-system) partition throws at the hypercall interface, the
// separation guarantees must hold — the simulation must not panic, the
// hypervisor must keep running, other partitions' memory must stay intact,
// and the cyclic schedule must keep its timing. This is the
// separation-kernel dependability claim of paper §II stated as an
// executable invariant.

import (
	"math/rand"
	"testing"

	"xmrobust/internal/sparc"
)

// fuzzArgs draws a hypercall argument vector biased toward interesting
// values: boundary literals, own-area pointers, foreign pointers.
func fuzzArgs(rng *rand.Rand) []uint64 {
	pool := []uint64{
		0, 1, 2, 16, 0xFFFFFFFF, 0x7FFFFFFF, 0x80000000,
		uint64(tpUserBase), uint64(tpUserBase) + 0x8000, uint64(tpUserBase) + 0x10000,
		uint64(tpSystemBase), // the other partition's area
		0x40000000,           // kernel image
		0xFFFFFFFFFFFFFFFF, 0x8000000000000000,
		rng.Uint64(), uint64(rng.Uint32()),
	}
	n := rng.Intn(5)
	args := make([]uint64, n)
	for i := range args {
		args[i] = pool[rng.Intn(len(pool))]
	}
	return args
}

func TestFuzzNormalPartitionCannotBreakSeparation(t *testing.T) {
	const rounds = 400
	rng := rand.New(rand.NewSource(20160912)) // fixed seed: deterministic CI
	for round := 0; round < rounds; round++ {
		k := newTestKernel(t, LegacyFaults())
		// Paint the system partition's memory with a sentinel pattern.
		sentinel := make([]byte, 256)
		for i := range sentinel {
			sentinel[i] = 0xA5
		}
		if err := k.WriteGuest(1, tpSystemBase, sentinel); err != nil {
			t.Fatal(err)
		}
		nr := Nr(rng.Intn(NumHypercalls+4) + 1) // includes a few invalid numbers
		args := fuzzArgs(rng)

		res, err := runCallFrom(t, k, 0, nr, args...)
		if err != nil && err != ErrHalted {
			if _, crashed := err.(sparc.ErrCrashed); crashed {
				t.Fatalf("round %d: %v(%#x) from a NORMAL partition crashed the simulator", round, nr, args)
			}
			t.Fatalf("round %d: run error %v", round, err)
		}
		// A normal partition must never stop or reset the hypervisor.
		// XM_set_timer is exempt: it is a standard (non-system) service,
		// so its seeded legacy bugs (TMR-1/TMR-2) are reachable from
		// normal partitions too — which is precisely the paper's point
		// about their severity.
		if nr != NrSetTimer {
			if st := k.Status(); st.State != KStateRunning {
				t.Fatalf("round %d: %v(%#x) from a NORMAL partition halted the kernel", round, nr, args)
			}
			if st := k.Status(); st.ColdResets+st.WarmResets != 0 {
				t.Fatalf("round %d: %v(%#x) from a NORMAL partition reset the system", round, nr, args)
			}
		}
		// Spatial separation: the system partition's memory is intact.
		b, err := k.ReadGuest(1, tpSystemBase, 256)
		if err != nil {
			t.Fatal(err)
		}
		for i := range b {
			if b[i] != 0xA5 {
				t.Fatalf("round %d: %v(%#x) modified another partition's memory at +%d",
					round, nr, args, i)
			}
		}
		_ = res
	}
}

func TestFuzzSystemPartitionNeverPanicsHarness(t *testing.T) {
	// System partitions can legitimately reset/halt the system and
	// trigger every seeded fault; the invariant here is purely that the
	// simulation always terminates cleanly with a classifiable outcome.
	const rounds = 300
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < rounds; round++ {
		k := newTestKernel(t, LegacyFaults())
		nr := Nr(rng.Intn(NumHypercalls+4) + 1)
		args := fuzzArgs(rng)
		_, err := runSystemCall(t, k, nr, args...)
		switch err {
		case nil, ErrHalted:
		default:
			if _, crashed := err.(sparc.ErrCrashed); !crashed {
				t.Fatalf("round %d: %v(%#x): unclassifiable outcome %v", round, nr, args, err)
			}
		}
	}
}

func TestFuzzScheduleTimingHolds(t *testing.T) {
	// Temporal separation: whatever the fuzzed system partition does
	// short of resetting/halting the system, the other partition's slots
	// start on schedule.
	const rounds = 120
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < rounds; round++ {
		k := newTestKernel(t, LegacyFaults())
		nr := Nr(rng.Intn(NumHypercalls) + 1)
		if nr == NrResetSystem || nr == NrHaltSystem || nr == NrSetTimer ||
			nr == NrResetPartition || nr == NrHaltPartition || nr == NrSuspendPartition ||
			nr == NrShutdownPartition {
			continue // these legitimately change who runs
		}
		args := fuzzArgs(rng)
		var starts []Time
		if err := k.AttachProgram(0, progFunc(func(env Env) bool {
			starts = append(starts, env.Now())
			return false
		})); err != nil {
			t.Fatal(err)
		}
		fired := false
		if err := k.AttachProgram(1, progFunc(func(env Env) bool {
			if !fired {
				fired = true
				env.Hypercall(nr, args...)
			}
			return false
		})); err != nil {
			t.Fatal(err)
		}
		err := k.RunMajorFrames(3)
		if err != nil && err != ErrHalted {
			if _, crashed := err.(sparc.ErrCrashed); !crashed {
				t.Fatal(err)
			}
			continue
		}
		if k.Status().State != KStateRunning {
			continue
		}
		// P0's slot starts at offset 0 of each 250ms frame.
		for i, s := range starts {
			slotStart := Time(i) * 250000
			if s < slotStart || s > slotStart+200 {
				t.Fatalf("round %d: %v(%#x) shifted P0's slot %d start to %d",
					round, nr, args, i, s)
			}
		}
	}
}
