package xm

// Edge-case coverage for service behaviours the main suites do not touch:
// partial reads, too-small receive buffers, info lookups, cursor motion.

import (
	"encoding/binary"
	"testing"
)

func TestReceiveBufferTooSmallForHeadMessage(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	name := putName(t, k, 1, 0, "tc")
	area, _ := k.PartitionDataArea(1)
	err := runScript(t, k, 1, func(env Env) {
		id := env.Hypercall(NrCreateQueuingPort, name, 4, 32, uint64(SourcePort))
		if id < 0 {
			t.Fatalf("create: %v", id)
		}
		env.Write(area.Base, make([]byte, 24))
		if rc := env.Hypercall(NrSendQueuingMsg, uint64(int32(id)), uint64(area.Base), 24); rc != OK {
			t.Fatalf("send: %v", rc)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	nameP0 := putName(t, k, 0, 0, "tc")
	areaP0, _ := k.PartitionDataArea(0)
	err = runScript(t, k, 0, func(env Env) {
		id := env.Hypercall(NrCreateQueuingPort, nameP0, 4, 32, uint64(DestinationPort))
		if id < 0 {
			t.Fatalf("create dest: %v", id)
		}
		// A 16-byte buffer cannot hold the 24-byte head message; the
		// message must stay queued.
		if rc := env.Hypercall(NrReceiveQueuingMsg, uint64(int32(id)), uint64(areaP0.Base), 16); rc != InvalidParam {
			t.Errorf("undersized receive = %v, want XM_INVALID_PARAM", rc)
		}
		if rc := env.Hypercall(NrReceiveQueuingMsg, uint64(int32(id)), uint64(areaP0.Base), 32); rc != RetCode(24) {
			t.Errorf("full receive = %v, want 24 (message must survive the failed receive)", rc)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGetPortInfoSuccess(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	name := putName(t, k, 1, 0, "tc")
	area, _ := k.PartitionDataArea(1)
	err := runScript(t, k, 1, func(env Env) {
		if rc := env.Hypercall(NrGetPortInfo, name, uint64(area.Base)); rc != OK {
			t.Fatalf("get_port_info: %v", rc)
		}
		b, _ := env.Read(area.Base, portInfoSize)
		if ChannelType(binary.BigEndian.Uint32(b[0:4])) != QueuingChannel {
			t.Errorf("type = %d", binary.BigEndian.Uint32(b[0:4]))
		}
		if binary.BigEndian.Uint32(b[4:8]) != 32 {
			t.Errorf("maxMsgSize = %d", binary.BigEndian.Uint32(b[4:8]))
		}
		if binary.BigEndian.Uint32(b[8:12]) != 4 {
			t.Errorf("maxNoMsgs = %d", binary.BigEndian.Uint32(b[8:12]))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGetPlanStatus(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	area, _ := k.PartitionDataArea(1)
	err := runScript(t, k, 1, func(env Env) {
		// Request a switch, then read the plan status: current 0, next 1.
		if rc := env.Hypercall(NrSwitchSchedPlan, 1, uint64(area.Base)+64); rc != OK {
			t.Fatalf("switch: %v", rc)
		}
		if rc := env.Hypercall(NrGetPlanStatus, uint64(area.Base)); rc != OK {
			t.Fatalf("get_plan_status: %v", rc)
		}
		b, _ := env.Read(area.Base, planStatusSize)
		if cur := binary.BigEndian.Uint32(b[0:4]); cur != 0 {
			t.Errorf("current plan = %d, want 0 (switch applies at the frame boundary)", cur)
		}
		if next := int32(binary.BigEndian.Uint32(b[4:8])); next != 1 {
			t.Errorf("next plan = %d, want 1", next)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if k.Status().CurrentPlan != 1 {
		t.Fatal("plan did not switch at the frame boundary")
	}
}

func TestSwitchSchedPlanToCurrentIsNoAction(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	area, _ := k.PartitionDataArea(1)
	res, err := runSystemCall(t, k, NrSwitchSchedPlan, 0, uint64(area.Base))
	if err != nil {
		t.Fatal(err)
	}
	mustRet(t, res, NoAction)
	if k.Status().CurrentPlan != 0 {
		t.Fatal("no-op switch changed the plan")
	}
}

func TestHmReadAdvancesCursor(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	// Two violations from P0 in one frame need two steps.
	hits := 0
	if err := k.AttachProgram(0, progFunc(func(env Env) bool {
		hits++
		env.Write(0x60000000, []byte{1}) // halted after the first
		return true
	})); err != nil {
		t.Fatal(err)
	}
	if err := k.RunMajorFrames(1); err != nil {
		t.Fatal(err)
	}
	// Resurrect P0 for a second violation (runScript touches only P1's
	// program, keeping the violator attached to P0).
	if err := runScript(t, k, 1, func(env Env) {
		if rc := env.Hypercall(NrResetPartition, 0, uint64(WarmReset), 0); rc != OK {
			t.Fatalf("reset: %v", rc)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := k.RunMajorFrames(1); err != nil {
		t.Fatal(err)
	}
	if len(k.HMEntries()) != 2 {
		t.Fatalf("HM entries = %d, want 2", len(k.HMEntries()))
	}
	area, _ := k.PartitionDataArea(1)
	err := runScript(t, k, 1, func(env Env) {
		if rc := env.Hypercall(NrHmRead, uint64(area.Base), 1); rc != RetCode(1) {
			t.Fatalf("first hm_read = %v, want 1", rc)
		}
		if rc := env.Hypercall(NrHmRead, uint64(area.Base), 8); rc != RetCode(1) {
			t.Fatalf("second hm_read = %v, want 1 (cursor advanced)", rc)
		}
		if rc := env.Hypercall(NrHmRead, uint64(area.Base), 8); rc != NoAction {
			t.Fatalf("third hm_read = %v, want XM_NO_ACTION (drained)", rc)
		}
		// Rewind and read both.
		if rc := env.Hypercall(NrHmSeek, 0, uint64(SeekSet)); rc != RetCode(0) {
			t.Fatalf("hm_seek: %v", rc)
		}
		if rc := env.Hypercall(NrHmRead, uint64(area.Base), 8); rc != RetCode(2) {
			t.Fatalf("post-seek hm_read = %v, want 2", rc)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSamplingOverwriteSemantics(t *testing.T) {
	// A sampling channel holds only the freshest message.
	k := newTestKernel(t, LegacyFaults())
	name := putName(t, k, 0, 0, "tm")
	area, _ := k.PartitionDataArea(0)
	err := runScript(t, k, 0, func(env Env) {
		id := env.Hypercall(NrCreateSamplingPort, name, 64, uint64(SourcePort))
		env.Write(area.Base, []byte("old!new!"))
		env.Hypercall(NrWriteSamplingMsg, uint64(int32(id)), uint64(area.Base), 4)
		env.Hypercall(NrWriteSamplingMsg, uint64(int32(id)), uint64(area.Base)+4, 4)
	})
	if err != nil {
		t.Fatal(err)
	}
	nameP1 := putName(t, k, 1, 0, "tm")
	areaP1, _ := k.PartitionDataArea(1)
	err = runScript(t, k, 1, func(env Env) {
		id := env.Hypercall(NrCreateSamplingPort, nameP1, 64, uint64(DestinationPort))
		n := env.Hypercall(NrReadSamplingMsg, uint64(int32(id)), uint64(areaP1.Base), 64)
		if n != RetCode(4) {
			t.Fatalf("read = %v", n)
		}
		b, _ := env.Read(areaP1.Base, 4)
		if string(b) != "new!" {
			t.Fatalf("sampling read %q, want the freshest message", b)
		}
		// Sampling reads are non-destructive.
		if n := env.Hypercall(NrReadSamplingMsg, uint64(int32(id)), uint64(areaP1.Base), 64); n != RetCode(4) {
			t.Fatalf("re-read = %v, want 4", n)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMulticallInnerSystemOnlyStillChecked(t *testing.T) {
	// Batch entries execute with the caller's privilege: a batch from the
	// system partition may carry privileged calls.
	k := newTestKernel(t, LegacyFaults())
	base, _ := sysArea(k)
	var img []byte
	img = append(img, be32(uint32(NrSuspendPartition))...)
	img = append(img, be32(0)...)
	img = append(img, be32(0)...) // arg0: partition 0
	img = append(img, be32(0)...)
	if err := k.WriteGuest(1, base, img); err != nil {
		t.Fatal(err)
	}
	res, err := runSystemCall(t, k, NrMulticall, uint64(base), uint64(base)+MulticallEntrySize)
	if err != nil {
		t.Fatal(err)
	}
	mustRet(t, res, RetCode(1))
	st, _ := k.PartitionStatus(0)
	if st.State != PStateSuspended {
		t.Fatalf("P0 state = %v, want SUSPENDED via multicall batch", st.State)
	}
}

func TestShutdownPartitionGetsNoSlots(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	steps := 0
	if err := k.AttachProgram(0, progFunc(func(env Env) bool {
		steps++
		return false
	})); err != nil {
		t.Fatal(err)
	}
	if _, err := runSystemCall(t, k, NrShutdownPartition, 0); err != nil {
		t.Fatal(err)
	}
	before := steps
	if err := k.RunMajorFrames(2); err != nil {
		t.Fatal(err)
	}
	if steps != before {
		t.Fatalf("shutdown partition stepped %d more times", steps-before)
	}
}
