package xm

import (
	"encoding/binary"
	"fmt"

	"xmrobust/internal/sparc"
)

// --- Miscellaneous ----------------------------------------------------------

// hcMulticall implements XM_multicall(startAddr, endAddr): executes the
// batch of hypercall records encoded in [startAddr, endAddr).
//
// Paper issues MSC-1..MSC-3 live here. The legacy implementation:
//
//   - does not validate the batch pointers against the caller's memory
//     areas, so an invalid startAddr (or a wrapped range) makes the kernel
//     itself take an unhandled data-access exception while walking the
//     batch (MSC-1/MSC-2);
//
//   - does not bound the batch against the remaining slot time, so a
//     large valid batch "may require multiple time consuming services ...
//     preventing nominal context switching as required by the scheduling
//     plan" — a temporal-isolation violation (MSC-3).
//
// The patched kernel removes the service ("temporarily removed by the XM
// development team"), returning XM_OP_NOT_ALLOWED.
func (k *Kernel) hcMulticall(caller *Partition, start, end sparc.Addr) RetCode {
	if k.faults.MulticallRemoved {
		return OpNotAllowed
	}
	// Legacy: no pointer validation whatsoever. The entry count is
	// computed in wrapping 32-bit arithmetic, so end < start yields a
	// huge batch.
	count := (uint32(end) - uint32(start)) / MulticallEntrySize
	if count == 0 {
		return NoAction
	}
	var executed uint32
	for i := uint32(0); i < count; i++ {
		// Batch processing is kernel work and cannot be preempted at the
		// slot boundary: once it exceeds the budget, the scheduling plan
		// has already been violated and the health monitor records it.
		if sc := k.cur; sc != nil && sc.used > sc.budget {
			k.cov(NrMulticall, 0) // batch outran the slot budget (MSC-3)
			k.declareOverrun(fmt.Sprintf(
				"XM_multicall batch of %d entries exceeded the slot budget after %d entries",
				count, executed))
			return OK // never observed: the partition is preempted
		}
		// The walk dereferences the guest pointer through the caller's MMU
		// context with no prior validation: an unmapped address traps in
		// kernel context — the "unhandled data access exception" of the
		// paper.
		addr := start + sparc.Addr(i*MulticallEntrySize)
		if tr := caller.space.Check(addr, MulticallEntrySize, sparc.PermRead); tr != nil {
			k.cov(NrMulticall, 1) // unvalidated batch walk trapped (MSC-1/2)
			k.raiseHM(HMEvMemProtection, caller,
				"unhandled data access exception in XM_multicall batch walk: "+tr.String())
			return OK // never observed: the partition was stopped
		}
		raw, tr := k.machine.Read(addr, MulticallEntrySize)
		if tr != nil {
			k.raiseHM(HMEvMemProtection, caller,
				"unhandled data access exception in XM_multicall batch walk: "+tr.String())
			return OK
		}
		nr := Nr(binary.BigEndian.Uint32(raw[0:4]))
		a0 := uint64(binary.BigEndian.Uint32(raw[8:12]))
		a1 := uint64(binary.BigEndian.Uint32(raw[12:16]))
		k.cov(NrMulticall, 2) // nested dispatch executed
		k.charge(multicallEntryCost)
		k.dispatch(caller, nr, []uint64{a0, a1})
		executed++
	}
	return RetCode(executed)
}

// maxConsoleWrite bounds one XM_write_console transfer.
const maxConsoleWrite = 1024

// hcWriteConsole implements XM_write_console(buffer, length): copies guest
// bytes to the UART console.
func (k *Kernel) hcWriteConsole(caller *Partition, ptr sparc.Addr, length uint32) RetCode {
	if length == 0 {
		return NoAction
	}
	if length > maxConsoleWrite {
		return InvalidParam
	}
	data, ok := k.copyFromGuest(caller, ptr, length)
	if !ok {
		return InvalidParam
	}
	k.machine.UART().Write(data)
	k.charge(Time(length) / 32)
	return RetCode(length)
}

// hcGetGidByName implements XM_get_gid_by_name(name, entity): resolves a
// partition or channel name to its global identifier.
func (k *Kernel) hcGetGidByName(caller *Partition, namePtr sparc.Addr, entity uint32) RetCode {
	var nameBuf [maxPortNameLen]byte
	name, ok := k.readGuestString(caller, namePtr, maxPortNameLen, nameBuf[:0])
	if !ok {
		return InvalidParam
	}
	switch entity {
	case EntityPartition:
		for _, p := range k.parts {
			if p.Name() == string(name) {
				k.cov(NrGetGidByName, 0)
				return RetCode(p.ID())
			}
		}
		return InvalidConfig
	case EntityChannel:
		for i, ch := range k.channels {
			if ch.cfg.Name == string(name) {
				k.cov(NrGetGidByName, 1)
				return RetCode(i)
			}
		}
		return InvalidConfig
	default:
		return InvalidParam
	}
}

// Cache selection bits for XM_flush_cache.
const (
	cacheICache uint32 = 1 << 0
	cacheDCache uint32 = 1 << 1
)

// hcFlushCache implements XM_flush_cache(cache).
func (k *Kernel) hcFlushCache(caller *Partition, cache uint32) RetCode {
	if cache == 0 {
		return NoAction
	}
	if cache&^(cacheICache|cacheDCache) != 0 {
		return InvalidParam
	}
	k.charge(5) // flush stall
	return OK
}

// paramsSize is the guest-visible size of the boot parameters record.
const paramsSize = 16

// hcGetParams implements XM_get_params(params*): writes the partition's
// boot parameters record.
func (k *Kernel) hcGetParams(caller *Partition, ptr sparc.Addr) RetCode {
	if !k.guestWritable(caller, ptr, paramsSize) {
		return InvalidParam
	}
	img := packWords(uint32(caller.ID()), caller.bootCount, boolWord(caller.System()), 0)
	if !k.copyToGuest(caller, ptr, img) {
		return InvalidParam
	}
	return OK
}
