package xm

import (
	"fmt"

	"xmrobust/internal/sparc"
)

// --- System Management ---------------------------------------------------

// hcHaltSystem implements XM_halt_system: stop the hypervisor and all
// partitions until an external power cycle.
func (k *Kernel) hcHaltSystem(caller *Partition) RetCode {
	k.halt(fmt.Sprintf("XM_halt_system from P%d", caller.ID()))
	return OK // never observed by the caller
}

// hcResetSystem implements XM_reset_system(mode).
//
// Paper issues SYS-1..SYS-3: the legacy kernel derives cold/warm from bit 0
// of the mode word without validating the rest, so XM_reset_system(2) and
// (16) cold-reset and (4294967295) warm-resets instead of returning
// XM_INVALID_PARAM. The patched kernel ("this service has now been revised
// by the XM development team") accepts only XM_COLD_RESET and
// XM_WARM_RESET.
func (k *Kernel) hcResetSystem(caller *Partition, mode uint32) RetCode {
	if k.faults.ResetSystemModeCheck && mode != ColdReset && mode != WarmReset {
		return InvalidParam
	}
	cold := mode&1 == 0
	if cold {
		k.cov(NrResetSystem, 0)
	} else {
		k.cov(NrResetSystem, 1)
	}
	k.requestSystemReset(cold)
	return OK // never observed: the system is resetting
}

// systemStatusSize is the guest-visible size of the system status record.
const systemStatusSize = 32

// hcGetSystemStatus implements XM_get_system_status(status*): serialises
// the hypervisor status record into guest memory.
func (k *Kernel) hcGetSystemStatus(caller *Partition, ptr sparc.Addr) RetCode {
	if !k.guestWritable(caller, ptr, systemStatusSize) {
		return InvalidParam
	}
	img := packWords(uint32(k.state), k.coldResets, k.warmResets, uint32(k.curPlan))
	img = append(img, be64(k.mafCount)...)
	img = append(img, packWords(k.hm.seq, uint32(len(k.parts)))...)
	if !k.copyToGuest(caller, ptr, img) {
		return InvalidParam
	}
	return OK
}

// --- Partition Management ------------------------------------------------

// targetPartition resolves and validates a partitionId argument.
func (k *Kernel) targetPartition(id int32) (*Partition, RetCode) {
	if id < 0 || int(id) >= len(k.parts) {
		return nil, InvalidParam
	}
	return k.parts[id], OK
}

// hcHaltPartition implements XM_halt_partition(partitionId).
func (k *Kernel) hcHaltPartition(caller *Partition, id int32) RetCode {
	p, rc := k.targetPartition(id)
	if rc != OK {
		return rc
	}
	if p.state == PStateHalted {
		return NoAction
	}
	p.halt(fmt.Sprintf("XM_halt_partition from P%d", caller.ID()))
	return OK
}

// hcResetPartition implements XM_reset_partition(partitionId, resetMode,
// status). Unlike XM_reset_system, the legacy kernel does validate the
// partition reset mode — the paper found no Partition Management issues.
func (k *Kernel) hcResetPartition(caller *Partition, id int32, mode, status uint32) RetCode {
	p, rc := k.targetPartition(id)
	if rc != OK {
		return rc
	}
	if mode != ColdReset && mode != WarmReset {
		return InvalidParam
	}
	_ = status // boot status word, delivered to the partition; any value is legal
	if mode == ColdReset {
		k.cov(NrResetPartition, 0)
	} else {
		k.cov(NrResetPartition, 1)
	}
	p.reset(mode == ColdReset)
	return OK
}

// hcSuspendPartition implements XM_suspend_partition(partitionId).
func (k *Kernel) hcSuspendPartition(caller *Partition, id int32) RetCode {
	p, rc := k.targetPartition(id)
	if rc != OK {
		return rc
	}
	if p.state != PStateNormal && p.state != PStateBoot {
		return NoAction
	}
	p.suspend(fmt.Sprintf("XM_suspend_partition from P%d", caller.ID()))
	return OK
}

// hcResumePartition implements XM_resume_partition(partitionId).
func (k *Kernel) hcResumePartition(caller *Partition, id int32) RetCode {
	p, rc := k.targetPartition(id)
	if rc != OK {
		return rc
	}
	if p.state != PStateSuspended {
		return NoAction
	}
	p.state = PStateNormal
	p.haltDetail = ""
	return OK
}

// hcShutdownPartition implements XM_shutdown_partition(partitionId): a
// graceful stop (the partition receives no further slots).
func (k *Kernel) hcShutdownPartition(caller *Partition, id int32) RetCode {
	p, rc := k.targetPartition(id)
	if rc != OK {
		return rc
	}
	if p.state == PStateShutdown || p.state == PStateHalted {
		return NoAction
	}
	p.state = PStateShutdown
	p.haltDetail = fmt.Sprintf("XM_shutdown_partition from P%d", caller.ID())
	return OK
}

// partitionStatusSize is the guest-visible size of a partition status
// record.
const partitionStatusSize = 32

// hcGetPartitionStatus implements XM_get_partition_status(partitionId,
// status*).
func (k *Kernel) hcGetPartitionStatus(caller *Partition, id int32, ptr sparc.Addr) RetCode {
	p, rc := k.targetPartition(id)
	if rc != OK {
		return rc
	}
	if !k.guestWritable(caller, ptr, partitionStatusSize) {
		return InvalidParam
	}
	img := packWords(uint32(p.ID()), uint32(p.state), p.bootCount, p.pendingVIRQs)
	img = append(img, be64(uint64(p.execClock))...)
	img = append(img, packWords(boolWord(p.System()), 0)...)
	if !k.copyToGuest(caller, ptr, img) {
		return InvalidParam
	}
	return OK
}

func boolWord(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// hcIdleSelf implements XM_idle_self: yield the remainder of the slot.
func (k *Kernel) hcIdleSelf(caller *Partition) RetCode {
	if sc := k.cur; sc != nil && sc.p == caller {
		sc.used = sc.budget // consume the rest of the slot idling
	}
	panic(guestStop{reason: "XM_idle_self"})
}

// hcSuspendSelf implements XM_suspend_self.
func (k *Kernel) hcSuspendSelf(caller *Partition) RetCode {
	caller.suspend("XM_suspend_self")
	panic(guestStop{reason: "XM_suspend_self"})
}

// partitionMmapSize is the guest-visible size of the memory-map record:
// a count word plus up to four (base, size) pairs.
const partitionMmapSize = 4 + 4*8

// hcGetPartitionMmap implements XM_get_partition_mmap(mmap*): writes the
// caller's memory areas (up to four) so the guest runtime can size its
// heap.
func (k *Kernel) hcGetPartitionMmap(caller *Partition, ptr sparc.Addr) RetCode {
	if !k.guestWritable(caller, ptr, partitionMmapSize) {
		return InvalidParam
	}
	areas := caller.cfg.MemoryAreas
	n := len(areas)
	if n > 4 {
		n = 4
	}
	img := packWords(uint32(n))
	for i := 0; i < 4; i++ {
		if i < n {
			img = append(img, packWords(uint32(areas[i].Base), areas[i].Size)...)
		} else {
			img = append(img, packWords(0, 0)...)
		}
	}
	if !k.copyToGuest(caller, ptr, img) {
		return InvalidParam
	}
	return OK
}

// Partition operating modes for XM_set_partition_opmode.
const (
	opModeNominal     = 0
	opModeMaintenance = 1
)

// hcSetPartitionOpMode implements XM_set_partition_opmode(opMode).
func (k *Kernel) hcSetPartitionOpMode(caller *Partition, mode uint32) RetCode {
	if mode != opModeNominal && mode != opModeMaintenance {
		return InvalidParam
	}
	return OK
}

// --- Plan Management ------------------------------------------------------

// hcSwitchSchedPlan implements XM_switch_sched_plan(planId, prevPlanId*).
// The switch takes effect at the next major-frame boundary, as the XM
// reference manual specifies.
func (k *Kernel) hcSwitchSchedPlan(caller *Partition, planID uint32, prevPtr sparc.Addr) RetCode {
	if int(planID) >= len(k.cfg.Plans) {
		return InvalidParam
	}
	if !k.guestWritable(caller, prevPtr, 4) {
		return InvalidParam
	}
	if !k.copyToGuest(caller, prevPtr, be32(uint32(k.curPlan))) {
		return InvalidParam
	}
	if int(planID) == k.curPlan {
		k.nextPlan = -1
		return NoAction
	}
	k.cov(NrSwitchSchedPlan, 0) // plan switch latched for the frame boundary
	k.nextPlan = int(planID)
	return OK
}

// planStatusSize is the guest-visible size of the plan status record.
const planStatusSize = 16

// hcGetPlanStatus implements XM_get_plan_status(status*).
func (k *Kernel) hcGetPlanStatus(caller *Partition, ptr sparc.Addr) RetCode {
	if !k.guestWritable(caller, ptr, planStatusSize) {
		return InvalidParam
	}
	img := packWords(uint32(k.curPlan), uint32(int32(k.nextPlan)))
	img = append(img, be64(k.mafCount)...)
	if !k.copyToGuest(caller, ptr, img) {
		return InvalidParam
	}
	return OK
}
