package xm

import "xmrobust/internal/sparc"

// --- Inter-Partition Communication ---------------------------------------
//
// Channels are statically configured (XM_CF); partitions attach to them at
// run time by creating ports. Sampling channels hold the most recent
// message; queuing channels hold a bounded FIFO. The paper's campaign
// raised no issues in this category: every parameter is validated.

// channel is the kernel-side state of one configured channel.
type channel struct {
	cfg ChannelConfig
	// sampling state
	msg       []byte
	msgValid  bool
	lastWrite Time
	// queuing state
	queue [][]byte
	// spare recycles retired queue buffers so a steady-state
	// send/receive cycle stops allocating.
	spare [][]byte
}

func newChannel(cfg ChannelConfig) *channel { return &channel{cfg: cfg} }

func (c *channel) reset() {
	// Buffer capacity is invisible to guests — every reuse overwrites the
	// whole message before it becomes readable — so reset parks the live
	// queue buffers on the spare list and keeps the sampling buffer's
	// backing array: a recycled kernel stops allocating in steady state.
	c.msg = c.msg[:0]
	c.msgValid, c.lastWrite = false, 0
	for i, b := range c.queue {
		c.spare = append(c.spare, b)
		c.queue[i] = nil
	}
	c.queue = c.queue[:0]
}

// port is one partition's attachment to a channel.
type port struct {
	id        int
	owner     int
	ch        *channel
	direction uint32
	open      bool
}

// maxPortNameLen bounds the NUL-terminated port name the create services
// read from guest memory.
const maxPortNameLen = 32

// findChannel resolves a channel by name and type.
// findChannel resolves a channel by name bytes and type. The name is a
// []byte so guest-supplied names compare without a heap conversion (the
// string(name) in the comparison compiles to an allocation-free match).
func (k *Kernel) findChannel(name []byte, typ ChannelType) *channel {
	for _, ch := range k.channels {
		if ch.cfg.Name == string(name) && ch.cfg.Type == typ {
			return ch
		}
	}
	return nil
}

// lookupPort validates a port descriptor against the caller.
func (k *Kernel) lookupPort(caller *Partition, id int32) (*port, RetCode) {
	if id < 0 || int(id) >= len(k.ports) {
		return nil, InvalidParam
	}
	pt := k.ports[int(id)]
	if !pt.open {
		return nil, InvalidParam
	}
	if pt.owner != caller.ID() {
		return nil, PermError
	}
	return pt, OK
}

// createPort is the shared implementation of the two create services.
func (k *Kernel) createPort(caller *Partition, namePtr sparc.Addr, typ ChannelType,
	maxNoMsgs, maxMsgSize, direction uint32) RetCode {
	var nameBuf [maxPortNameLen]byte
	name, ok := k.readGuestString(caller, namePtr, maxPortNameLen, nameBuf[:0])
	if !ok {
		return InvalidParam
	}
	if maxMsgSize == 0 {
		return InvalidParam
	}
	if direction != SourcePort && direction != DestinationPort {
		return InvalidParam
	}
	ch := k.findChannel(name, typ)
	if ch == nil {
		return InvalidConfig
	}
	if maxMsgSize != ch.cfg.MaxMsgSize {
		return InvalidConfig
	}
	if typ == QueuingChannel && maxNoMsgs != ch.cfg.MaxNoMsgs {
		return InvalidConfig
	}
	// The configured endpoint must match the requested direction.
	if direction == SourcePort && ch.cfg.Source != caller.ID() {
		return PermError
	}
	if direction == DestinationPort && ch.cfg.Destination != caller.ID() {
		return PermError
	}
	nr := NrCreateSamplingPort
	if typ == QueuingChannel {
		nr = NrCreateQueuingPort
	}
	// Re-creating an already-open port returns the existing descriptor.
	for _, pt := range k.ports {
		if pt.open && pt.owner == caller.ID() && pt.ch == ch && pt.direction == direction {
			k.cov(nr, 0) // existing descriptor reused
			return RetCode(pt.id)
		}
	}
	k.cov(nr, 1) // fresh port attached
	pt := k.portSlot()
	*pt = port{id: len(k.ports) - 1, owner: caller.ID(), ch: ch, direction: direction, open: true}
	return RetCode(pt.id)
}

// portSlot extends the descriptor table by one entry, reusing a retired
// port struct when the backing array holds one — kernel recycling and
// system resets truncate k.ports, leaving the structs parked in the
// array's tail for the next incarnation's create calls.
func (k *Kernel) portSlot() *port {
	n := len(k.ports)
	if n < cap(k.ports) {
		k.ports = k.ports[:n+1]
		if pt := k.ports[n]; pt != nil {
			return pt
		}
	} else {
		k.ports = append(k.ports, nil)
	}
	pt := &port{}
	k.ports[n] = pt
	return pt
}

// hcCreateSamplingPort implements XM_create_sampling_port(portName,
// maxMsgSize, direction) and returns the port descriptor on success.
func (k *Kernel) hcCreateSamplingPort(caller *Partition, namePtr sparc.Addr, maxMsgSize, direction uint32) RetCode {
	return k.createPort(caller, namePtr, SamplingChannel, 0, maxMsgSize, direction)
}

// hcCreateQueuingPort implements XM_create_queuing_port(portName,
// maxNoMsgs, maxMsgSize, direction).
func (k *Kernel) hcCreateQueuingPort(caller *Partition, namePtr sparc.Addr, maxNoMsgs, maxMsgSize, direction uint32) RetCode {
	return k.createPort(caller, namePtr, QueuingChannel, maxNoMsgs, maxMsgSize, direction)
}

// hcWriteSamplingMsg implements XM_write_sampling_message(portId, msgPtr,
// msgSize).
func (k *Kernel) hcWriteSamplingMsg(caller *Partition, id int32, msgPtr sparc.Addr, size uint32) RetCode {
	pt, rc := k.lookupPort(caller, id)
	if rc != OK {
		return rc
	}
	if pt.ch.cfg.Type != SamplingChannel || pt.direction != SourcePort {
		return InvalidParam
	}
	if size == 0 || size > pt.ch.cfg.MaxMsgSize {
		return InvalidParam
	}
	// Reuse the channel's message buffer: nothing outside the channel
	// retains it, and a failed copy never partially writes (the guest
	// range is validated and resolved as a whole), so the stale message
	// stays observable on failure exactly as before.
	data := pt.ch.msg
	if uint32(cap(data)) < size {
		data = make([]byte, size)
	} else {
		data = data[:size]
	}
	if !k.copyFromGuestInto(caller, msgPtr, data) {
		return InvalidParam
	}
	k.charge(Time(size) / 64) // copy cost
	pt.ch.msg = data
	pt.ch.msgValid = true
	pt.ch.lastWrite = k.machine.Now()
	return OK
}

// hcReadSamplingMsg implements XM_read_sampling_message(portId, msgPtr,
// msgSize): copies up to msgSize bytes of the freshest message and returns
// the number of bytes read.
func (k *Kernel) hcReadSamplingMsg(caller *Partition, id int32, msgPtr sparc.Addr, size uint32) RetCode {
	pt, rc := k.lookupPort(caller, id)
	if rc != OK {
		return rc
	}
	if pt.ch.cfg.Type != SamplingChannel || pt.direction != DestinationPort {
		return InvalidParam
	}
	if size == 0 || size > pt.ch.cfg.MaxMsgSize {
		return InvalidParam
	}
	if !pt.ch.msgValid {
		return NoAction
	}
	n := uint32(len(pt.ch.msg))
	if n > size {
		k.cov(NrReadSamplingMsg, 0) // message truncated to the read buffer
		n = size
	}
	if !k.copyToGuest(caller, msgPtr, pt.ch.msg[:n]) {
		return InvalidParam
	}
	k.charge(Time(n) / 64)
	return RetCode(n)
}

// hcSendQueuingMsg implements XM_send_queuing_message(portId, msgPtr,
// msgSize). A full queue returns XM_NOT_AVAILABLE (the service does not
// block: blocking would let one partition steal another's slot time).
func (k *Kernel) hcSendQueuingMsg(caller *Partition, id int32, msgPtr sparc.Addr, size uint32) RetCode {
	pt, rc := k.lookupPort(caller, id)
	if rc != OK {
		return rc
	}
	if pt.ch.cfg.Type != QueuingChannel || pt.direction != SourcePort {
		return InvalidParam
	}
	if size == 0 || size > pt.ch.cfg.MaxMsgSize {
		return InvalidParam
	}
	// Draw the message buffer from the channel's spare list when one is
	// big enough. The copy still happens before the full-queue check —
	// a bad pointer must report InvalidParam even when the queue is
	// full — so on NotAvailable the buffer goes back on the spare list.
	var data []byte
	if n := len(pt.ch.spare); n > 0 && uint32(cap(pt.ch.spare[n-1])) >= size {
		data = pt.ch.spare[n-1][:size]
		pt.ch.spare[n-1] = nil
		pt.ch.spare = pt.ch.spare[:n-1]
	} else {
		data = make([]byte, size)
	}
	if !k.copyFromGuestInto(caller, msgPtr, data) {
		return InvalidParam
	}
	if uint32(len(pt.ch.queue)) >= pt.ch.cfg.MaxNoMsgs {
		pt.ch.spare = append(pt.ch.spare, data)
		return NotAvailable
	}
	k.charge(Time(size) / 64)
	pt.ch.queue = append(pt.ch.queue, data)
	return OK
}

// hcReceiveQueuingMsg implements XM_receive_queuing_message(portId, msgPtr,
// msgSize): pops the oldest message, returning its length, or XM_NO_ACTION
// when the queue is empty.
func (k *Kernel) hcReceiveQueuingMsg(caller *Partition, id int32, msgPtr sparc.Addr, size uint32) RetCode {
	pt, rc := k.lookupPort(caller, id)
	if rc != OK {
		return rc
	}
	if pt.ch.cfg.Type != QueuingChannel || pt.direction != DestinationPort {
		return InvalidParam
	}
	if size == 0 || size > pt.ch.cfg.MaxMsgSize {
		return InvalidParam
	}
	if len(pt.ch.queue) == 0 {
		return NoAction
	}
	msg := pt.ch.queue[0]
	if uint32(len(msg)) > size {
		k.cov(NrReceiveQueuingMsg, 0) // receive buffer smaller than head
		return InvalidParam
	}
	if !k.copyToGuest(caller, msgPtr, msg) {
		return InvalidParam
	}
	pt.ch.queue = pt.ch.queue[1:]
	if uint32(len(pt.ch.spare)) < pt.ch.cfg.MaxNoMsgs {
		pt.ch.spare = append(pt.ch.spare, msg)
	}
	k.charge(Time(len(msg)) / 64)
	return RetCode(len(msg))
}

// portStatusSize is the guest-visible size of a port status record.
const portStatusSize = 16

// hcGetPortStatus implements XM_get_port_status(portId, status*).
func (k *Kernel) hcGetPortStatus(caller *Partition, id int32, ptr sparc.Addr) RetCode {
	pt, rc := k.lookupPort(caller, id)
	if rc != OK {
		return rc
	}
	if !k.guestWritable(caller, ptr, portStatusSize) {
		return InvalidParam
	}
	pending := uint32(0)
	switch pt.ch.cfg.Type {
	case SamplingChannel:
		if pt.ch.msgValid {
			pending = 1
		}
	case QueuingChannel:
		pending = uint32(len(pt.ch.queue))
	}
	img := packWords(uint32(pt.ch.cfg.Type), pt.direction, pt.ch.cfg.MaxMsgSize, pending)
	if !k.copyToGuest(caller, ptr, img) {
		return InvalidParam
	}
	return OK
}

// hcClosePort implements XM_close_port(portId).
func (k *Kernel) hcClosePort(caller *Partition, id int32) RetCode {
	pt, rc := k.lookupPort(caller, id)
	if rc != OK {
		return rc
	}
	pt.open = false
	return OK
}

// hcFlushPort implements XM_flush_port(portId): discards buffered data on
// the attached channel.
func (k *Kernel) hcFlushPort(caller *Partition, id int32) RetCode {
	pt, rc := k.lookupPort(caller, id)
	if rc != OK {
		return rc
	}
	switch pt.ch.cfg.Type {
	case SamplingChannel:
		k.cov(NrFlushPort, 0)
		pt.ch.msg, pt.ch.msgValid = pt.ch.msg[:0], false
	case QueuingChannel:
		k.cov(NrFlushPort, 1)
		for i, b := range pt.ch.queue {
			pt.ch.spare = append(pt.ch.spare, b)
			pt.ch.queue[i] = nil
		}
		pt.ch.queue = pt.ch.queue[:0]
	}
	return OK
}

// portInfoSize is the guest-visible size of a port info record.
const portInfoSize = 16

// hcGetPortInfo implements XM_get_port_info(portName, info*): resolves a
// channel by name and reports its static attributes.
func (k *Kernel) hcGetPortInfo(caller *Partition, namePtr, infoPtr sparc.Addr) RetCode {
	var nameBuf [maxPortNameLen]byte
	name, ok := k.readGuestString(caller, namePtr, maxPortNameLen, nameBuf[:0])
	if !ok {
		return InvalidParam
	}
	if !k.guestWritable(caller, infoPtr, portInfoSize) {
		return InvalidParam
	}
	for _, ch := range k.channels {
		if ch.cfg.Name != string(name) {
			continue
		}
		img := packWords(uint32(ch.cfg.Type), ch.cfg.MaxMsgSize, ch.cfg.MaxNoMsgs,
			uint32(ch.cfg.Source)<<16|uint32(ch.cfg.Destination))
		if !k.copyToGuest(caller, infoPtr, img) {
			return InvalidParam
		}
		return OK
	}
	return InvalidConfig
}
