package xm

import (
	"encoding/binary"
	"strings"
	"testing"

	"xmrobust/internal/sparc"
)

// runScript executes fn once inside partition pid's slot and returns the
// run error. fn runs with a live Env.
func runScript(t *testing.T, k *Kernel, pid int, fn func(env Env)) error {
	t.Helper()
	done := false
	err := k.AttachProgram(pid, progFunc(func(env Env) bool {
		if done {
			return false
		}
		done = true
		fn(env)
		return false
	}))
	if err != nil {
		t.Fatal(err)
	}
	return k.RunMajorFrames(1)
}

// --- IPC -------------------------------------------------------------------

// putName writes a NUL-terminated string into a partition's data area and
// returns its guest address.
func putName(t *testing.T, k *Kernel, pid int, off uint32, name string) uint64 {
	t.Helper()
	area, _ := k.PartitionDataArea(pid)
	addr := area.Base + 0x8000 + sparc.Addr(off)
	if err := k.WriteGuest(pid, addr, append([]byte(name), 0)); err != nil {
		t.Fatal(err)
	}
	return uint64(addr)
}

func TestIPCSamplingEndToEnd(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	nameP0 := putName(t, k, 0, 0, "tm")
	nameP1 := putName(t, k, 1, 0, "tm")
	areaP0, _ := k.PartitionDataArea(0)
	areaP1, _ := k.PartitionDataArea(1)

	var got []byte
	if err := k.AttachProgram(0, progFunc(func(env Env) bool {
		id := env.Hypercall(NrCreateSamplingPort, nameP0, 64, uint64(SourcePort))
		if id < 0 {
			t.Errorf("create source port: %v", id)
			return false
		}
		env.Write(areaP0.Base, []byte("hello-tm"))
		if rc := env.Hypercall(NrWriteSamplingMsg, uint64(int32(id)), uint64(areaP0.Base), 8); rc != OK {
			t.Errorf("write sampling: %v", rc)
		}
		return false
	})); err != nil {
		t.Fatal(err)
	}
	if err := k.AttachProgram(1, progFunc(func(env Env) bool {
		id := env.Hypercall(NrCreateSamplingPort, nameP1, 64, uint64(DestinationPort))
		if id < 0 {
			t.Errorf("create dest port: %v", id)
			return false
		}
		n := env.Hypercall(NrReadSamplingMsg, uint64(int32(id)), uint64(areaP1.Base), 64)
		if n != RetCode(8) {
			t.Errorf("read sampling = %v, want 8", n)
			return false
		}
		got, _ = env.Read(areaP1.Base, 8)
		return false
	})); err != nil {
		t.Fatal(err)
	}
	if err := k.RunMajorFrames(1); err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello-tm" {
		t.Fatalf("message across partitions = %q, want %q", got, "hello-tm")
	}
}

func TestIPCQueuingFIFOAndBackpressure(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	name := putName(t, k, 1, 0, "tc")
	area, _ := k.PartitionDataArea(1)
	err := runScript(t, k, 1, func(env Env) {
		id := env.Hypercall(NrCreateQueuingPort, name, 4, 32, uint64(SourcePort))
		if id < 0 {
			t.Errorf("create queuing port: %v", id)
			return
		}
		env.Write(area.Base, []byte("msg0msg1msg2msg3extra"))
		for i := 0; i < 4; i++ {
			if rc := env.Hypercall(NrSendQueuingMsg, uint64(int32(id)), uint64(area.Base)+uint64(4*i), 4); rc != OK {
				t.Errorf("send %d: %v", i, rc)
			}
		}
		// Queue is full (MaxNoMsgs=4): the fifth send must not block.
		if rc := env.Hypercall(NrSendQueuingMsg, uint64(int32(id)), uint64(area.Base)+16, 4); rc != NotAvailable {
			t.Errorf("send to full queue = %v, want XM_NOT_AVAILABLE", rc)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Drain from the destination partition (P0).
	nameP0 := putName(t, k, 0, 0, "tc")
	areaP0, _ := k.PartitionDataArea(0)
	err = runScript(t, k, 0, func(env Env) {
		id := env.Hypercall(NrCreateQueuingPort, nameP0, 4, 32, uint64(DestinationPort))
		if id < 0 {
			t.Errorf("create dest queuing port: %v", id)
			return
		}
		for i := 0; i < 4; i++ {
			n := env.Hypercall(NrReceiveQueuingMsg, uint64(int32(id)), uint64(areaP0.Base), 32)
			if n != RetCode(4) {
				t.Errorf("receive %d = %v, want 4", i, n)
				return
			}
			b, _ := env.Read(areaP0.Base, 4)
			want := []byte("msg0")
			want[3] = byte('0' + i)
			if string(b) != string(want) {
				t.Errorf("receive %d = %q, want %q (FIFO order)", i, b, want)
			}
		}
		if rc := env.Hypercall(NrReceiveQueuingMsg, uint64(int32(id)), uint64(areaP0.Base), 32); rc != NoAction {
			t.Errorf("receive from empty queue = %v, want XM_NO_ACTION", rc)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIPCValidationMatrix(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	name := putName(t, k, 1, 0, "tm")
	badName := putName(t, k, 1, 64, "nosuch")
	area, _ := k.PartitionDataArea(1)
	err := runScript(t, k, 1, func(env Env) {
		cases := []struct {
			name string
			got  RetCode
			want RetCode
		}{
			{"null name ptr", env.Hypercall(NrCreateSamplingPort, 0, 64, uint64(SourcePort)), InvalidParam},
			{"unknown channel", env.Hypercall(NrCreateSamplingPort, badName, 64, uint64(SourcePort)), InvalidConfig},
			{"size mismatch", env.Hypercall(NrCreateSamplingPort, name, 16, uint64(SourcePort)), InvalidConfig},
			{"bad direction", env.Hypercall(NrCreateSamplingPort, name, 64, 7), InvalidParam},
			{"wrong endpoint", env.Hypercall(NrCreateSamplingPort, name, 64, uint64(SourcePort)), PermError},
			{"bad port id write", env.Hypercall(NrWriteSamplingMsg, uint64(uint32(0xFFFFFFFF)), uint64(area.Base), 8), InvalidParam},
			{"closed port read", env.Hypercall(NrReadSamplingMsg, 17, uint64(area.Base), 8), InvalidParam},
			{"close bad id", env.Hypercall(NrClosePort, uint64(uint32(0x80000000))), InvalidParam},
			{"flush bad id", env.Hypercall(NrFlushPort, 99), InvalidParam},
			{"port status bad id", env.Hypercall(NrGetPortStatus, 5, uint64(area.Base)), InvalidParam},
			{"port info unknown", env.Hypercall(NrGetPortInfo, badName, uint64(area.Base)), InvalidConfig},
		}
		for _, c := range cases {
			if c.got != c.want {
				t.Errorf("%s: got %v, want %v", c.name, c.got, c.want)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIPCPortStatusAndLifecycle(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	name := putName(t, k, 0, 0, "tm")
	area, _ := k.PartitionDataArea(0)
	err := runScript(t, k, 0, func(env Env) {
		id := env.Hypercall(NrCreateSamplingPort, name, 64, uint64(SourcePort))
		if id < 0 {
			t.Errorf("create: %v", id)
			return
		}
		// Re-creating returns the same descriptor.
		if id2 := env.Hypercall(NrCreateSamplingPort, name, 64, uint64(SourcePort)); id2 != id {
			t.Errorf("re-create = %v, want %v", id2, id)
		}
		env.Write(area.Base, []byte("x"))
		env.Hypercall(NrWriteSamplingMsg, uint64(int32(id)), uint64(area.Base), 1)
		if rc := env.Hypercall(NrGetPortStatus, uint64(int32(id)), uint64(area.Base)+256); rc != OK {
			t.Errorf("status: %v", rc)
		}
		b, _ := env.Read(area.Base+256, 16)
		if binary.BigEndian.Uint32(b[12:16]) != 1 {
			t.Errorf("pending = %d, want 1", binary.BigEndian.Uint32(b[12:16]))
		}
		if rc := env.Hypercall(NrClosePort, uint64(int32(id))); rc != OK {
			t.Errorf("close: %v", rc)
		}
		if rc := env.Hypercall(NrWriteSamplingMsg, uint64(int32(id)), uint64(area.Base), 1); rc != InvalidParam {
			t.Errorf("write to closed port = %v, want XM_INVALID_PARAM", rc)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// --- Memory ------------------------------------------------------------------

func TestMemoryCopyWithinPartition(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	area, _ := k.PartitionDataArea(1)
	if err := k.WriteGuest(1, area.Base, []byte("copyme")); err != nil {
		t.Fatal(err)
	}
	res, err := runSystemCall(t, k, NrMemoryCopy, uint64(area.Base)+0x100, uint64(area.Base), 6)
	if err != nil {
		t.Fatal(err)
	}
	mustRet(t, res, OK)
	b, _ := k.ReadGuest(1, area.Base+0x100, 6)
	if string(b) != "copyme" {
		t.Fatalf("copied = %q", b)
	}
}

func TestMemoryCopyValidation(t *testing.T) {
	area1Base := uint64(tpSystemBase)
	cases := []struct {
		name          string
		dst, src, len uint64
		want          RetCode
	}{
		{"zero size", area1Base, area1Base + 8, 0, NoAction},
		{"null src", area1Base, 0, 4, InvalidParam},
		{"null dst", 0, area1Base, 4, InvalidParam},
		{"src other partition", area1Base, uint64(tpUserBase), 4, InvalidParam},
		{"dst other partition", uint64(tpUserBase), area1Base, 4, InvalidParam},
		{"size past end", area1Base, area1Base + 8, uint64(tpAreaSize), InvalidParam},
		{"huge size", area1Base, area1Base + 8, 0xFFFFFFFF, InvalidParam},
	}
	for _, c := range cases {
		k := newTestKernel(t, LegacyFaults())
		res, err := runSystemCall(t, k, NrMemoryCopy, c.dst, c.src, c.len)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !res.returned || res.ret != c.want {
			t.Errorf("%s: ret=%v returned=%v, want %v", c.name, res.ret, res.returned, c.want)
		}
	}
}

func TestMemoryCopyOverlappingIsMemmove(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	area, _ := k.PartitionDataArea(1)
	if err := k.WriteGuest(1, area.Base, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	res, err := runSystemCall(t, k, NrMemoryCopy, uint64(area.Base)+2, uint64(area.Base), 4)
	if err != nil {
		t.Fatal(err)
	}
	mustRet(t, res, OK)
	b, _ := k.ReadGuest(1, area.Base, 6)
	if string(b) != "ababcd" {
		t.Fatalf("overlapping copy = %q, want %q", b, "ababcd")
	}
}

func TestUpdatePage32(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	area, _ := k.PartitionDataArea(1)
	res, err := runSystemCall(t, k, NrUpdatePage32, uint64(area.Base)+8, 0xCAFEBABE)
	if err != nil {
		t.Fatal(err)
	}
	mustRet(t, res, OK)
	b, _ := k.ReadGuest(1, area.Base+8, 4)
	if binary.BigEndian.Uint32(b) != 0xCAFEBABE {
		t.Fatal("update_page32 did not write")
	}
	// Misaligned must be rejected.
	k2 := newTestKernel(t, LegacyFaults())
	res, err = runSystemCall(t, k2, NrUpdatePage32, uint64(area.Base)+2, 1)
	if err != nil {
		t.Fatal(err)
	}
	mustRet(t, res, InvalidParam)
}

// --- Health Monitor services -------------------------------------------------

// provoke generates one MemProtection HM event from P0.
func provoke(t *testing.T, k *Kernel) {
	t.Helper()
	if err := runScript(t, k, 0, func(env Env) {
		env.Write(0x60000000, []byte{1})
	}); err != nil {
		t.Fatal(err)
	}
}

func TestHmReadReturnsEntries(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	provoke(t, k)
	area, _ := k.PartitionDataArea(1)
	res, err := runSystemCall(t, k, NrHmRead, uint64(area.Base), 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.ret < 1 {
		t.Fatalf("hm_read = %v, want >= 1 entries", res.ret)
	}
	b, _ := k.ReadGuest(1, area.Base, hmEntrySize)
	if ev := HMEvent(binary.BigEndian.Uint32(b[4:8])); ev != HMEvMemProtection {
		t.Fatalf("first HM entry event = %v, want MEM_PROTECTION", ev)
	}
}

func TestHmReadValidation(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	provoke(t, k)
	area, _ := k.PartitionDataArea(1)
	for _, c := range []struct {
		name       string
		ptr, count uint64
		want       RetCode
	}{
		{"zero count", uint64(area.Base), 0, NoAction},
		{"null ptr", 0, 4, InvalidParam},
		{"ptr outside", uint64(tpUserBase), 4, InvalidParam},
	} {
		k2 := newTestKernel(t, LegacyFaults())
		provoke(t, k2)
		res, err := runSystemCall(t, k2, NrHmRead, c.ptr, c.count)
		if err != nil {
			t.Fatal(err)
		}
		if res.ret != c.want {
			t.Errorf("%s: %v, want %v", c.name, res.ret, c.want)
		}
	}
}

func TestHmSeekWhence(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	provoke(t, k)
	for _, c := range []struct {
		offset int64
		whence uint64
		want   RetCode
	}{
		{0, uint64(SeekSet), 0},
		{0, uint64(SeekEnd), 1}, // one event logged
		{-1, uint64(SeekEnd), 0},
		{0, uint64(SeekCur), 0},
		{5, uint64(SeekSet), InvalidParam},  // past end
		{-1, uint64(SeekSet), InvalidParam}, // negative
		{0, 3, InvalidParam},                // bad whence
	} {
		res, err := runSystemCall(t, k, NrHmSeek, uint64(c.offset), c.whence)
		if err != nil {
			t.Fatal(err)
		}
		if res.ret != c.want {
			t.Errorf("hm_seek(%d,%d) = %v, want %v", c.offset, c.whence, res.ret, c.want)
		}
		// fresh kernel per case to keep cursor state predictable
		k = newTestKernel(t, LegacyFaults())
		provoke(t, k)
	}
}

func TestHmStatusCountsEvents(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	provoke(t, k)
	area, _ := k.PartitionDataArea(1)
	res, err := runSystemCall(t, k, NrHmStatus, uint64(area.Base))
	if err != nil {
		t.Fatal(err)
	}
	mustRet(t, res, OK)
	b, _ := k.ReadGuest(1, area.Base, hmStatusSize)
	if total := binary.BigEndian.Uint32(b[0:4]); total != 1 {
		t.Fatalf("hm total events = %d, want 1", total)
	}
}

func TestHmHypercallsAreSystemOnly(t *testing.T) {
	for _, nr := range []Nr{NrHmRead, NrHmSeek, NrHmStatus, NrHmOpen, NrHmReset} {
		k := newTestKernel(t, LegacyFaults())
		res, err := runCallFrom(t, k, 0, nr, uint64(tpUserBase), 1)
		if err != nil {
			t.Fatal(err)
		}
		if res.ret != PermError {
			t.Errorf("%d from normal partition = %v, want XM_PERM_ERROR", nr, res.ret)
		}
	}
}

// --- Trace services -----------------------------------------------------------

func TestTraceEventAndReadBack(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	area, _ := k.PartitionDataArea(1)
	err := runScript(t, k, 1, func(env Env) {
		env.Write(area.Base, []byte("0123456789abcdef"))
		if rc := env.Hypercall(NrTraceEvent, 1, uint64(area.Base)); rc != OK {
			t.Errorf("trace_event: %v", rc)
		}
		if rc := env.Hypercall(NrTraceEvent, 0, uint64(area.Base)); rc != NoAction {
			t.Errorf("trace_event with zero bitmask = %v, want XM_NO_ACTION", rc)
		}
		if rc := env.Hypercall(NrTraceRead, 1, uint64(area.Base)+64); rc != OK {
			t.Errorf("trace_read: %v", rc)
		}
		b, _ := env.Read(area.Base+64, 16)
		if string(b) != "0123456789abcdef" {
			t.Errorf("trace payload = %q", b)
		}
		if rc := env.Hypercall(NrTraceRead, 1, uint64(area.Base)+64); rc != NoAction {
			t.Errorf("trace_read past end = %v, want XM_NO_ACTION", rc)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTracePrivilege(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	area, _ := k.PartitionDataArea(0)
	err := runScript(t, k, 0, func(env Env) {
		// Normal partition reading another partition's stream.
		if rc := env.Hypercall(NrTraceRead, 1, uint64(area.Base)); rc != PermError {
			t.Errorf("cross-partition trace_read = %v, want XM_PERM_ERROR", rc)
		}
		if rc := env.Hypercall(NrTraceRead, uint64(uint32(0xFFFFFFFF)), uint64(area.Base)); rc != InvalidParam {
			t.Errorf("trace_read(-1) = %v, want XM_INVALID_PARAM", rc)
		}
		if rc := env.Hypercall(NrTraceOpen, 0); rc != RetCode(0) {
			t.Errorf("trace_open own = %v, want 0", rc)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// System partition may read any stream.
	k2 := newTestKernel(t, LegacyFaults())
	res, err := runSystemCall(t, k2, NrTraceRead, 0, uint64(tpSystemBase))
	if err != nil {
		t.Fatal(err)
	}
	mustRet(t, res, NoAction) // empty stream, but permitted
}

func TestTraceSeekAndStatus(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	area, _ := k.PartitionDataArea(1)
	err := runScript(t, k, 1, func(env Env) {
		env.Write(area.Base, make([]byte, 16))
		for i := 0; i < 3; i++ {
			env.Hypercall(NrTraceEvent, 1, uint64(area.Base))
		}
		if rc := env.Hypercall(NrTraceSeek, 1, 1, uint64(SeekSet)); rc != RetCode(1) {
			t.Errorf("trace_seek set 1 = %v", rc)
		}
		if rc := env.Hypercall(NrTraceSeek, 1, uint64(uint32(0xFFFFFFFE)), uint64(SeekEnd)); rc != RetCode(1) {
			t.Errorf("trace_seek end-2 = %v", rc)
		}
		if rc := env.Hypercall(NrTraceSeek, 1, 9, uint64(SeekSet)); rc != InvalidParam {
			t.Errorf("trace_seek past end = %v, want XM_INVALID_PARAM", rc)
		}
		if rc := env.Hypercall(NrTraceStatus, 1, uint64(area.Base)+128); rc != OK {
			t.Errorf("trace_status: %v", rc)
		}
		b, _ := env.Read(area.Base+128, 4)
		if binary.BigEndian.Uint32(b) != 3 {
			t.Errorf("trace count = %d, want 3", binary.BigEndian.Uint32(b))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTraceRingDropsOldest(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	area, _ := k.PartitionDataArea(1)
	err := runScript(t, k, 1, func(env Env) {
		env.Write(area.Base, make([]byte, 16))
		for i := 0; i < traceCap+5; i++ {
			env.Hypercall(NrTraceEvent, 1, uint64(area.Base))
		}
		env.Hypercall(NrTraceStatus, 1, uint64(area.Base)+128)
		b, _ := env.Read(area.Base+128, 12)
		if n := binary.BigEndian.Uint32(b[0:4]); n != traceCap {
			t.Errorf("trace count = %d, want cap %d", n, traceCap)
		}
		if d := binary.BigEndian.Uint32(b[8:12]); d != 5 {
			t.Errorf("trace dropped = %d, want 5", d)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// --- Interrupt services --------------------------------------------------------

func TestIrqMaskValidation(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	err := runScript(t, k, 1, func(env Env) {
		// P1 owns line 5 only.
		if rc := env.Hypercall(NrSetIrqMask, 1<<5, 0); rc != OK {
			t.Errorf("mask own line = %v", rc)
		}
		if rc := env.Hypercall(NrSetIrqMask, 1<<4, 0); rc != PermError {
			t.Errorf("mask foreign line = %v, want XM_PERM_ERROR", rc)
		}
		if rc := env.Hypercall(NrClearIrqMask, 1<<5, 0xFFFFFFFF); rc != OK {
			t.Errorf("clear mask = %v", rc)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSetIrqPend(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	err := runScript(t, k, 1, func(env Env) {
		if rc := env.Hypercall(NrSetIrqPend, 1<<5, 0); rc != OK {
			t.Errorf("set_irqpend own hw line = %v", rc)
		}
		if rc := env.Hypercall(NrSetIrqPend, 1, 0); rc != InvalidParam {
			t.Errorf("set_irqpend line 0 = %v, want XM_INVALID_PARAM", rc)
		}
		if rc := env.Hypercall(NrSetIrqPend, 1<<16, 0); rc != InvalidParam {
			t.Errorf("set_irqpend line 16 = %v, want XM_INVALID_PARAM", rc)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if k.Machine().IRQ().Raised(5) != 1 {
		t.Fatal("set_irqpend did not raise the hardware line")
	}
	// Normal partitions may not inject.
	k2 := newTestKernel(t, LegacyFaults())
	res, err := runCallFrom(t, k2, 0, NrSetIrqPend, 1<<4, 0)
	if err != nil {
		t.Fatal(err)
	}
	mustRet(t, res, PermError)
}

func TestRouteIrqValidation(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	err := runScript(t, k, 1, func(env Env) {
		for _, c := range []struct {
			typ, irq, vec uint64
			want          RetCode
		}{
			{0, 5, 0x40, OK},
			{0, 4, 0x40, PermError},    // not P1's line
			{0, 0, 0x40, InvalidParam}, // line 0 invalid
			{0, 16, 0x40, InvalidParam},
			{1, 31, 0x80, OK},
			{1, 32, 0x80, InvalidParam},
			{2, 5, 0x40, InvalidParam},  // bad type
			{0, 5, 256, InvalidParam},   // bad vector
			{16, 5, 0x40, InvalidParam}, // bad type (dictionary value)
		} {
			if rc := env.Hypercall(NrRouteIrq, c.typ, c.irq, c.vec); rc != c.want {
				t.Errorf("route_irq(%d,%d,%d) = %v, want %v", c.typ, c.irq, c.vec, rc, c.want)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// --- Sparc V8 services ----------------------------------------------------------

func TestSparcAtomics(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	area, _ := k.PartitionDataArea(1)
	err := runScript(t, k, 1, func(env Env) {
		env.Write(area.Base, []byte{0, 0, 0, 10})
		if rc := env.Hypercall(NrSparcAtomicAdd, uint64(area.Base), 5); rc != RetCode(15) {
			t.Errorf("atomic_add = %v, want 15", rc)
		}
		if rc := env.Hypercall(NrSparcAtomicAnd, uint64(area.Base), 0xC); rc != RetCode(12) {
			t.Errorf("atomic_and = %v, want 12", rc)
		}
		if rc := env.Hypercall(NrSparcAtomicOr, uint64(area.Base), 0x1); rc != RetCode(13) {
			t.Errorf("atomic_or = %v, want 13", rc)
		}
		// Validation: null, misaligned, foreign.
		if rc := env.Hypercall(NrSparcAtomicAdd, 0, 1); rc != InvalidParam {
			t.Errorf("atomic_add(NULL) = %v", rc)
		}
		if rc := env.Hypercall(NrSparcAtomicAdd, uint64(area.Base)+2, 1); rc != InvalidParam {
			t.Errorf("atomic_add(misaligned) = %v", rc)
		}
		if rc := env.Hypercall(NrSparcAtomicAdd, uint64(tpUserBase), 1); rc != InvalidParam {
			t.Errorf("atomic_add(foreign) = %v", rc)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSparcPortIO(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	area, _ := k.PartitionDataArea(1)
	err := runScript(t, k, 1, func(env Env) {
		if rc := env.Hypercall(NrSparcOutPort, 3, 0xABCD); rc != OK {
			t.Errorf("outport: %v", rc)
		}
		if rc := env.Hypercall(NrSparcInPort, 3, uint64(area.Base)); rc != OK {
			t.Errorf("inport: %v", rc)
		}
		b, _ := env.Read(area.Base, 4)
		if binary.BigEndian.Uint32(b) != 0xABCD {
			t.Errorf("inport read back %#x", binary.BigEndian.Uint32(b))
		}
		if rc := env.Hypercall(NrSparcInPort, uint64(numIOPorts), uint64(area.Base)); rc != InvalidParam {
			t.Errorf("inport(bad port) = %v", rc)
		}
		if rc := env.Hypercall(NrSparcInPort, 3, 0); rc != InvalidParam {
			t.Errorf("inport(NULL) = %v", rc)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// P0 has no I/O rights.
	k2 := newTestKernel(t, LegacyFaults())
	res, err := runCallFrom(t, k2, 0, NrSparcOutPort, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	mustRet(t, res, PermError)
}

func TestSparcPsrTbr(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	err := runScript(t, k, 1, func(env Env) {
		if rc := env.Hypercall(NrSparcSetPsr, uint64(psrWritableMask)); rc != OK {
			t.Errorf("set_psr(writable bits) = %v", rc)
		}
		if rc := env.Hypercall(NrSparcGetPsr); rc != RetCode(psrWritableMask&0x7FFFFFFF) {
			t.Errorf("get_psr = %#x", uint32(rc))
		}
		if rc := env.Hypercall(NrSparcSetPsr, 0x80); rc != InvalidParam {
			t.Errorf("set_psr(supervisor bit) = %v, want XM_INVALID_PARAM", rc)
		}
		if rc := env.Hypercall(NrSparcWriteTbr, uint64(tpSystemBase)); rc != OK {
			t.Errorf("write_tbr = %v", rc)
		}
		if rc := env.Hypercall(NrSparcWriteTbr, uint64(tpSystemBase)+4); rc != InvalidParam {
			t.Errorf("write_tbr(unaligned) = %v", rc)
		}
		if rc := env.Hypercall(NrSparcIFlush, uint64(tpSystemBase)); rc != OK {
			t.Errorf("iflush = %v", rc)
		}
		if rc := env.Hypercall(NrSparcIFlush, 0); rc != InvalidParam {
			t.Errorf("iflush(NULL) = %v", rc)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// --- Misc services ----------------------------------------------------------------

func TestWriteConsole(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	area, _ := k.PartitionDataArea(1)
	if err := k.WriteGuest(1, area.Base, []byte("hello console\n")); err != nil {
		t.Fatal(err)
	}
	res, err := runSystemCall(t, k, NrWriteConsole, uint64(area.Base), 14)
	if err != nil {
		t.Fatal(err)
	}
	mustRet(t, res, RetCode(14))
	if !strings.Contains(k.Machine().UART().String(), "hello console") {
		t.Fatalf("console = %q", k.Machine().UART().String())
	}
}

func TestWriteConsoleValidation(t *testing.T) {
	for _, c := range []struct {
		ptr, length uint64
		want        RetCode
	}{
		{0, 4, InvalidParam},
		{uint64(tpSystemBase), 0, NoAction},
		{uint64(tpSystemBase), maxConsoleWrite + 1, InvalidParam},
		{uint64(tpUserBase), 4, InvalidParam}, // foreign buffer
	} {
		k := newTestKernel(t, LegacyFaults())
		res, err := runSystemCall(t, k, NrWriteConsole, c.ptr, c.length)
		if err != nil {
			t.Fatal(err)
		}
		if res.ret != c.want {
			t.Errorf("write_console(%#x,%d) = %v, want %v", c.ptr, c.length, res.ret, c.want)
		}
	}
}

func TestGetGidByName(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	nameSys := putName(t, k, 1, 0, "SYS")
	nameTc := putName(t, k, 1, 64, "tc")
	nameBad := putName(t, k, 1, 128, "nobody")
	err := runScript(t, k, 1, func(env Env) {
		if rc := env.Hypercall(NrGetGidByName, nameSys, uint64(EntityPartition)); rc != RetCode(1) {
			t.Errorf("gid(SYS) = %v, want 1", rc)
		}
		if rc := env.Hypercall(NrGetGidByName, nameTc, uint64(EntityChannel)); rc != RetCode(1) {
			t.Errorf("gid(tc) = %v, want 1", rc)
		}
		if rc := env.Hypercall(NrGetGidByName, nameBad, uint64(EntityPartition)); rc != InvalidConfig {
			t.Errorf("gid(nobody) = %v, want XM_INVALID_CONFIG", rc)
		}
		if rc := env.Hypercall(NrGetGidByName, nameSys, 16); rc != InvalidParam {
			t.Errorf("gid(bad entity) = %v, want XM_INVALID_PARAM", rc)
		}
		if rc := env.Hypercall(NrGetGidByName, 0, uint64(EntityPartition)); rc != InvalidParam {
			t.Errorf("gid(NULL) = %v, want XM_INVALID_PARAM", rc)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFlushCacheAndGetParams(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	area, _ := k.PartitionDataArea(1)
	err := runScript(t, k, 1, func(env Env) {
		if rc := env.Hypercall(NrFlushCache, uint64(cacheICache|cacheDCache)); rc != OK {
			t.Errorf("flush_cache = %v", rc)
		}
		if rc := env.Hypercall(NrFlushCache, 0); rc != NoAction {
			t.Errorf("flush_cache(0) = %v", rc)
		}
		if rc := env.Hypercall(NrFlushCache, 16); rc != InvalidParam {
			t.Errorf("flush_cache(16) = %v", rc)
		}
		if rc := env.Hypercall(NrGetParams, uint64(area.Base)); rc != OK {
			t.Errorf("get_params = %v", rc)
		}
		b, _ := env.Read(area.Base, 12)
		if binary.BigEndian.Uint32(b[0:4]) != 1 {
			t.Errorf("params partition id = %d, want 1", binary.BigEndian.Uint32(b[0:4]))
		}
		if binary.BigEndian.Uint32(b[8:12]) != 1 {
			t.Errorf("params system flag = %d, want 1", binary.BigEndian.Uint32(b[8:12]))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// --- Partition management extra coverage -------------------------------------------

func TestPartitionLifecycleHypercalls(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	err := runScript(t, k, 1, func(env Env) {
		if rc := env.Hypercall(NrSuspendPartition, 0); rc != OK {
			t.Errorf("suspend: %v", rc)
		}
		if st, _ := k.PartitionStatus(0); st.State != PStateSuspended {
			t.Errorf("state after suspend = %v", st.State)
		}
		if rc := env.Hypercall(NrSuspendPartition, 0); rc != NoAction {
			t.Errorf("double suspend = %v, want XM_NO_ACTION", rc)
		}
		if rc := env.Hypercall(NrResumePartition, 0); rc != OK {
			t.Errorf("resume: %v", rc)
		}
		if rc := env.Hypercall(NrResumePartition, 0); rc != NoAction {
			t.Errorf("resume of running = %v, want XM_NO_ACTION", rc)
		}
		if rc := env.Hypercall(NrHaltPartition, 0); rc != OK {
			t.Errorf("halt: %v", rc)
		}
		if rc := env.Hypercall(NrResetPartition, 0, uint64(ColdReset), 0); rc != OK {
			t.Errorf("reset after halt: %v", rc)
		}
		if st, _ := k.PartitionStatus(0); st.State != PStateBoot {
			t.Errorf("state after reset = %v, want BOOT", st.State)
		}
		if rc := env.Hypercall(NrShutdownPartition, 0); rc != OK {
			t.Errorf("shutdown: %v", rc)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPartitionIdValidation(t *testing.T) {
	for _, nr := range []Nr{NrHaltPartition, NrSuspendPartition, NrResumePartition, NrShutdownPartition} {
		for _, id := range []uint64{uint64(uint32(0x80000000)), uint64(uint32(0xFFFFFFF0)), 16, 2147483647} {
			k := newTestKernel(t, LegacyFaults())
			res, err := runSystemCall(t, k, nr, id)
			if err != nil {
				t.Fatal(err)
			}
			if res.ret != InvalidParam {
				t.Errorf("hypercall %d id %#x = %v, want XM_INVALID_PARAM", nr, id, res.ret)
			}
		}
	}
}

func TestResetPartitionModeValidated(t *testing.T) {
	// Unlike XM_reset_system, the partition reset mode is checked even in
	// the legacy kernel (the paper found 0 Partition Management issues).
	for _, mode := range []uint64{2, 16, 4294967295} {
		k := newTestKernel(t, LegacyFaults())
		res, err := runSystemCall(t, k, NrResetPartition, 0, mode, 0)
		if err != nil {
			t.Fatal(err)
		}
		mustRet(t, res, InvalidParam)
		if st, _ := k.PartitionStatus(0); st.BootCount != 1 {
			t.Fatalf("mode %d reset the partition", mode)
		}
	}
}

func TestGetPartitionStatusSerialization(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	area, _ := k.PartitionDataArea(1)
	res, err := runSystemCall(t, k, NrGetPartitionStatus, 0, uint64(area.Base))
	if err != nil {
		t.Fatal(err)
	}
	mustRet(t, res, OK)
	b, _ := k.ReadGuest(1, area.Base, partitionStatusSize)
	if id := binary.BigEndian.Uint32(b[0:4]); id != 0 {
		t.Fatalf("status id = %d", id)
	}
	if state := binary.BigEndian.Uint32(b[4:8]); PState(state) != PStateNormal {
		t.Fatalf("status state = %d", state)
	}
}

func TestGetSystemStatusSerialization(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	area, _ := k.PartitionDataArea(1)
	res, err := runSystemCall(t, k, NrGetSystemStatus, uint64(area.Base))
	if err != nil {
		t.Fatal(err)
	}
	mustRet(t, res, OK)
	b, _ := k.ReadGuest(1, area.Base, systemStatusSize)
	if state := binary.BigEndian.Uint32(b[0:4]); KState(state) != KStateRunning {
		t.Fatalf("system state = %d", state)
	}
	if parts := binary.BigEndian.Uint32(b[28:32]); parts != 2 {
		t.Fatalf("partition count = %d, want 2", parts)
	}
}

func TestGetTimeBothClocks(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	area, _ := k.PartitionDataArea(1)
	err := runScript(t, k, 1, func(env Env) {
		env.Compute(500)
		if rc := env.Hypercall(NrGetTime, uint64(HwClock), uint64(area.Base)); rc != OK {
			t.Errorf("get_time(hw): %v", rc)
		}
		if rc := env.Hypercall(NrGetTime, uint64(ExecClock), uint64(area.Base)+8); rc != OK {
			t.Errorf("get_time(exec): %v", rc)
		}
		hw, _ := env.Read(area.Base, 8)
		ex, _ := env.Read(area.Base+8, 8)
		hwT := int64(binary.BigEndian.Uint64(hw))
		exT := int64(binary.BigEndian.Uint64(ex))
		if hwT < 100000 {
			t.Errorf("hw clock = %d, want >= slot start (100000)", hwT)
		}
		if exT < 500 || exT > 5000 {
			t.Errorf("exec clock = %d, want ~500-5000", exT)
		}
		if rc := env.Hypercall(NrGetTime, 2, uint64(area.Base)); rc != InvalidParam {
			t.Errorf("get_time(2) = %v, want XM_INVALID_PARAM", rc)
		}
		if rc := env.Hypercall(NrGetTime, uint64(HwClock), 0); rc != InvalidParam {
			t.Errorf("get_time(NULL) = %v, want XM_INVALID_PARAM", rc)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGetPartitionMmap(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	area, _ := k.PartitionDataArea(1)
	res, err := runSystemCall(t, k, NrGetPartitionMmap, uint64(area.Base))
	if err != nil {
		t.Fatal(err)
	}
	mustRet(t, res, OK)
	b, _ := k.ReadGuest(1, area.Base, 12)
	if n := binary.BigEndian.Uint32(b[0:4]); n != 1 {
		t.Fatalf("mmap count = %d, want 1", n)
	}
	if base := binary.BigEndian.Uint32(b[4:8]); base != uint32(tpSystemBase) {
		t.Fatalf("mmap base = %#x", base)
	}
}
