package xm

import (
	"testing"

	"xmrobust/internal/sparc"
)

// progFunc adapts a plain function to the Program interface (no-op Boot).
type progFunc func(env Env) bool

func (f progFunc) Boot(env Env)      {}
func (f progFunc) Step(env Env) bool { return f(env) }

// bootProg is a Program with explicit Boot and Step hooks.
type bootProg struct {
	boot func(env Env)
	step func(env Env) bool
}

func (b *bootProg) Boot(env Env) {
	if b.boot != nil {
		b.boot(env)
	}
}

func (b *bootProg) Step(env Env) bool {
	if b.step != nil {
		return b.step(env)
	}
	return false
}

// Test layout: two partitions in RAM, P1 is the system partition (the
// FDIR analogue the campaign injects from).
const (
	tpUserBase   sparc.Addr = 0x40100000
	tpSystemBase sparc.Addr = 0x40200000
	tpAreaSize   uint32     = 0x10000 // 64 KiB
)

// testConfig builds a two-partition system: P0 "USER" (normal), P1 "SYS"
// (system partition), 250 ms major frame with 50 ms slots each.
func testConfig() Config {
	return Config{
		Name: "two-part-test",
		Partitions: []PartitionConfig{
			{
				ID: 0, Name: "USER",
				MemoryAreas: []sparc.Region{
					{Name: "data", Base: tpUserBase, Size: tpAreaSize, Perm: sparc.PermRW},
				},
				HwIrqLines: []int{4},
			},
			{
				ID: 1, Name: "SYS", System: true,
				MemoryAreas: []sparc.Region{
					{Name: "data", Base: tpSystemBase, Size: tpAreaSize, Perm: sparc.PermRW},
				},
				HwIrqLines: []int{5},
				IOPorts:    true,
			},
		},
		Plans: []PlanConfig{
			{ID: 0, MajorFrame: 250000, Slots: []SlotConfig{
				{PartitionID: 0, Start: 0, Duration: 50000},
				{PartitionID: 1, Start: 100000, Duration: 50000},
			}},
			{ID: 1, MajorFrame: 250000, Slots: []SlotConfig{
				{PartitionID: 1, Start: 0, Duration: 200000},
			}},
		},
		Channels: []ChannelConfig{
			{Name: "tm", Type: SamplingChannel, MaxMsgSize: 64, Source: 0, Destination: 1},
			{Name: "tc", Type: QueuingChannel, MaxMsgSize: 32, MaxNoMsgs: 4, Source: 1, Destination: 0},
		},
	}
}

// newTestKernel boots a kernel over testConfig with the given faults.
func newTestKernel(t *testing.T, faults FaultSet) *Kernel {
	t.Helper()
	k, err := New(testConfig(), WithFaults(faults))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return k
}

// callResult is the outcome of one scripted hypercall as observed by the
// guest.
type callResult struct {
	ret      RetCode
	returned bool // false when control never came back to the guest
}

// runSystemCall runs one hypercall from the system partition (P1) inside
// its slot and reports the guest-observed outcome plus the run error.
func runSystemCall(t *testing.T, k *Kernel, nr Nr, args ...uint64) (callResult, error) {
	t.Helper()
	return runCallFrom(t, k, 1, nr, args...)
}

// runCallFrom runs one hypercall from partition pid. The other partition
// idles. The kernel runs one major frame.
func runCallFrom(t *testing.T, k *Kernel, pid int, nr Nr, args ...uint64) (callResult, error) {
	t.Helper()
	var res callResult
	attempted := false
	idle := progFunc(func(env Env) bool { env.Compute(100); return false })
	caller := progFunc(func(env Env) bool {
		if attempted {
			return false // invoke exactly once, even if it never returned
		}
		attempted = true
		ret := env.Hypercall(nr, args...)
		res.ret = ret
		res.returned = true
		return false
	})
	for id := 0; id < k.NumPartitions(); id++ {
		prog := Program(idle)
		if id == pid {
			prog = caller
		}
		if err := k.AttachProgram(id, prog); err != nil {
			t.Fatalf("AttachProgram: %v", err)
		}
	}
	err := k.RunMajorFrames(1)
	return res, err
}

// sysArea returns the system partition's data area as (base, end).
func sysArea(k *Kernel) (sparc.Addr, sparc.Addr) {
	r, ok := k.PartitionDataArea(1)
	if !ok {
		panic("no data area")
	}
	return r.Base, r.Base + sparc.Addr(r.Size)
}

// mustRet asserts the guest observed the expected return code.
func mustRet(t *testing.T, res callResult, want RetCode) {
	t.Helper()
	if !res.returned {
		t.Fatalf("hypercall did not return to the guest (want %v)", want)
	}
	if res.ret != want {
		t.Fatalf("ret = %v, want %v", res.ret, want)
	}
}

// hmHas reports whether the HM log contains an event of the given class.
func hmHas(k *Kernel, ev HMEvent) bool {
	for _, e := range k.HMEntries() {
		if e.Event == ev {
			return true
		}
	}
	return false
}
