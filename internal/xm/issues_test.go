package xm

// Tests for the nine seeded vulnerabilities of paper §IV.C, legacy vs
// patched. These pin the exact behaviours the robustness campaign must
// rediscover.

import (
	"math"
	"strings"
	"testing"
)

// --- SYS-1..3: XM_reset_system mode checking ------------------------------

func TestIssueSYS1ResetSystemMode2ColdResets(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	res, err := runSystemCall(t, k, NrResetSystem, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.returned {
		t.Fatal("XM_reset_system(2) returned; it must have reset the kernel")
	}
	if st := k.Status(); st.ColdResets != 1 || st.WarmResets != 0 {
		t.Fatalf("resets = cold %d warm %d, want cold 1 (paper: unexpected cold reset)",
			st.ColdResets, st.WarmResets)
	}
}

func TestIssueSYS2ResetSystemMode16ColdResets(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	res, err := runSystemCall(t, k, NrResetSystem, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.returned {
		t.Fatal("XM_reset_system(16) returned")
	}
	if st := k.Status(); st.ColdResets != 1 {
		t.Fatalf("ColdResets = %d, want 1", st.ColdResets)
	}
}

func TestIssueSYS3ResetSystemModeMaxWarmResets(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	res, err := runSystemCall(t, k, NrResetSystem, 4294967295)
	if err != nil {
		t.Fatal(err)
	}
	if res.returned {
		t.Fatal("XM_reset_system(4294967295) returned")
	}
	if st := k.Status(); st.WarmResets != 1 || st.ColdResets != 0 {
		t.Fatalf("resets = cold %d warm %d, want warm 1 (paper: unexpected warm reset)",
			st.ColdResets, st.WarmResets)
	}
}

func TestPatchedResetSystemRejectsInvalidModes(t *testing.T) {
	for _, mode := range []uint64{2, 16, 4294967295} {
		k := newTestKernel(t, PatchedFaults())
		res, err := runSystemCall(t, k, NrResetSystem, mode)
		if err != nil {
			t.Fatal(err)
		}
		mustRet(t, res, InvalidParam)
		if st := k.Status(); st.ColdResets+st.WarmResets != 0 {
			t.Fatalf("mode %d reset the patched kernel", mode)
		}
	}
}

func TestResetSystemValidModesStillWork(t *testing.T) {
	for _, faults := range []FaultSet{LegacyFaults(), PatchedFaults()} {
		k := newTestKernel(t, faults)
		res, err := runSystemCall(t, k, NrResetSystem, uint64(ColdReset))
		if err != nil {
			t.Fatal(err)
		}
		if res.returned {
			t.Fatal("valid cold reset returned")
		}
		if k.Status().ColdResets != 1 {
			t.Fatal("valid cold reset did not reset")
		}
	}
}

// --- TMR-1: XM_set_timer(0,1,1) — kernel stack overflow, XM halt ----------

func TestIssueTMR1SetTimerSmallIntervalHaltsKernel(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	_, err := runSystemCall(t, k, NrSetTimer, uint64(HwClock), 1, 1)
	if err != ErrHalted {
		t.Fatalf("err = %v, want ErrHalted (paper: system fatal error leading to an XM halt)", err)
	}
	if st := k.Status(); st.State != KStateHalted {
		t.Fatalf("kernel state = %v, want HALTED", st.State)
	}
	found := false
	for _, e := range k.HMEntries() {
		if e.Event == HMEvFatalError && e.SystemScope &&
			strings.Contains(e.Detail, "stack overflow") {
			found = true
		}
	}
	if !found {
		t.Fatalf("HM log lacks the kernel stack-overflow fatal error: %v", k.HMEntries())
	}
}

// --- TMR-2: XM_set_timer(1,1,1) — timer trap crashes the simulator --------

func TestIssueTMR2SetTimerExecClockCrashesSimulator(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	_, err := runSystemCall(t, k, NrSetTimer, uint64(ExecClock), 1, 1)
	if err == nil || err == ErrHalted {
		t.Fatalf("err = %v, want a simulator crash (paper: timer trap crashes TSIM)", err)
	}
	crashed, reason := k.Machine().Crashed()
	if !crashed {
		t.Fatal("machine did not crash")
	}
	if !strings.Contains(reason, "timer trap") {
		t.Fatalf("crash reason = %q", reason)
	}
}

// --- TMR-3: XM_set_timer(·,1,LLONG_MIN) — silent success -------------------

func TestIssueTMR3NegativeIntervalSilentlySucceeds(t *testing.T) {
	for _, clock := range []uint32{HwClock, ExecClock} {
		k := newTestKernel(t, LegacyFaults())
		res, err := runSystemCall(t, k, NrSetTimer, uint64(clock), 1, uint64(uint64(math.MaxInt64)+1))
		if err != nil {
			t.Fatal(err)
		}
		// The paper: "incorrectly returned a successful operation code
		// when invoked with a negative interval".
		mustRet(t, res, OK)
		if st := k.Status(); st.State != KStateRunning {
			t.Fatalf("clock %d: kernel state = %v, want RUNNING", clock, st.State)
		}
	}
}

func TestPatchedSetTimerRejectsBadIntervals(t *testing.T) {
	cases := []struct {
		name              string
		clock             uint32
		absTime, interval int64
	}{
		{"small interval hw", HwClock, 1, 1},
		{"small interval exec", ExecClock, 1, 1},
		{"below 50us", HwClock, 1, 49},
		{"negative interval hw", HwClock, 1, math.MinInt64},
		{"negative interval exec", ExecClock, 1, math.MinInt64},
		{"negative absTime", HwClock, math.MinInt64, 100},
	}
	for _, tc := range cases {
		k := newTestKernel(t, PatchedFaults())
		res, err := runSystemCall(t, k, NrSetTimer,
			uint64(tc.clock), uint64(tc.absTime), uint64(tc.interval))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.ret != InvalidParam || !res.returned {
			t.Fatalf("%s: ret = %v returned=%v, want XM_INVALID_PARAM", tc.name, res.ret, res.returned)
		}
	}
}

func TestSetTimerValidIntervalWorks(t *testing.T) {
	for _, faults := range []FaultSet{LegacyFaults(), PatchedFaults()} {
		k := newTestKernel(t, faults)
		var fired bool
		if err := k.AttachProgram(1, progFunc(func(env Env) bool {
			st, _ := k.PartitionStatus(1)
			if st.Pending&(1<<vtimerVIRQ) != 0 {
				fired = true
				return false
			}
			if env.Now() < 150000 {
				// Arm 10ms from now, one-shot, in the first slot.
				env.Hypercall(NrSetTimer, uint64(HwClock), uint64(env.Now()+10000), 0)
			}
			env.Compute(1000)
			return true
		})); err != nil {
			t.Fatal(err)
		}
		if err := k.RunMajorFrames(2); err != nil {
			t.Fatal(err)
		}
		if !fired {
			t.Fatal("valid one-shot timer never delivered its virtual interrupt")
		}
	}
}

func TestSetTimerInvalidClockRejectedBothKernels(t *testing.T) {
	for _, faults := range []FaultSet{LegacyFaults(), PatchedFaults()} {
		for _, clock := range []uint64{2, 16, 4294967295} {
			k := newTestKernel(t, faults)
			res, err := runSystemCall(t, k, NrSetTimer, clock, 1, 1)
			if err != nil {
				t.Fatal(err)
			}
			mustRet(t, res, InvalidParam)
		}
	}
}

// --- MSC-1/2/3: XM_multicall --------------------------------------------

func TestIssueMSC1MulticallInvalidStartKernelException(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	_, end := sysArea(k)
	res, err := runSystemCall(t, k, NrMulticall, 0, uint64(end))
	if err != nil {
		t.Fatal(err)
	}
	if res.returned {
		t.Fatal("XM_multicall(NULL, end) returned; the kernel should have faulted")
	}
	found := false
	for _, e := range k.HMEntries() {
		if e.Event == HMEvMemProtection && strings.Contains(e.Detail, "XM_multicall") {
			found = true
		}
	}
	if !found {
		t.Fatalf("HM log lacks the multicall data-access exception: %v", k.HMEntries())
	}
	st, _ := k.PartitionStatus(1)
	if st.State != PStateHalted {
		t.Fatalf("partition state = %v, want HALTED (abort)", st.State)
	}
}

func TestIssueMSC2MulticallWrappedEndOverruns(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	base, _ := sysArea(k)
	// end < start wraps the unsigned entry count: a huge batch.
	res, err := runSystemCall(t, k, NrMulticall, uint64(base), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.returned {
		t.Fatal("XM_multicall(base, NULL) returned")
	}
	if !hmHas(k, HMEvSchedOverrun) {
		t.Fatalf("HM log lacks the slot overrun: %v", k.HMEntries())
	}
	st, _ := k.PartitionStatus(1)
	if st.State != PStateSuspended {
		t.Fatalf("partition state = %v, want SUSPENDED (temporal violation)", st.State)
	}
}

func TestIssueMSC3MulticallValidBatchBreaksTemporalIsolation(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	base, end := sysArea(k)
	// A fully valid 64 KiB batch: 4096 entries of ~17µs exceed the 50ms
	// slot. Paper: "preventing nominal context switching as required by
	// the scheduling plan".
	res, err := runSystemCall(t, k, NrMulticall, uint64(base), uint64(end))
	if err != nil {
		t.Fatal(err)
	}
	if res.returned {
		t.Fatal("oversized multicall returned within its slot")
	}
	if !hmHas(k, HMEvSchedOverrun) {
		t.Fatal("no temporal-isolation violation recorded")
	}
	// Temporal isolation: the other partition's next slot must still
	// start on schedule in the following frame.
	ran := false
	if err := k.AttachProgram(0, progFunc(func(env Env) bool { ran = true; return false })); err != nil {
		t.Fatal(err)
	}
	if err := k.RunMajorFrames(1); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("victim partition lost its slot after the multicall overrun")
	}
}

func TestMulticallEmptyRangeIsNoAction(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	base, _ := sysArea(k)
	for _, addr := range []uint64{0, uint64(base)} {
		res, err := runSystemCall(t, k, NrMulticall, addr, addr)
		if err != nil {
			t.Fatal(err)
		}
		mustRet(t, res, NoAction)
		k2 := newTestKernel(t, LegacyFaults())
		k = k2
	}
}

func TestMulticallExecutesValidBatch(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	base, _ := sysArea(k)
	// Two entries: XM_sparc_flush_regwin twice (nr 58, no args).
	var img []byte
	for i := 0; i < 2; i++ {
		img = append(img, be32(uint32(NrSparcFlushRegWin))...)
		img = append(img, be32(0)...)
		img = append(img, be32(0)...)
		img = append(img, be32(0)...)
	}
	if err := k.WriteGuest(1, base, img); err != nil {
		t.Fatal(err)
	}
	res, err := runSystemCall(t, k, NrMulticall, uint64(base), uint64(base)+uint64(len(img)))
	if err != nil {
		t.Fatal(err)
	}
	mustRet(t, res, RetCode(2))
	// 1 outer + 2 inner hypercalls.
	if k.HypercallCount() != 3 {
		t.Fatalf("HypercallCount = %d, want 3", k.HypercallCount())
	}
}

func TestPatchedMulticallRemoved(t *testing.T) {
	k := newTestKernel(t, PatchedFaults())
	base, end := sysArea(k)
	for _, args := range [][2]uint64{{0, uint64(end)}, {uint64(base), 0}, {uint64(base), uint64(end)}} {
		res, err := runSystemCall(t, k, NrMulticall, args[0], args[1])
		if err != nil {
			t.Fatal(err)
		}
		mustRet(t, res, OpNotAllowed)
		k = newTestKernel(t, PatchedFaults())
	}
}

func TestAllNineIssuesAbsentInPatchedKernel(t *testing.T) {
	// Drive every §IV.C trigger against the patched kernel: no resets, no
	// halts, no crashes, no HM escalations.
	triggers := []struct {
		nr   Nr
		args []uint64
	}{
		{NrResetSystem, []uint64{2}},
		{NrResetSystem, []uint64{16}},
		{NrResetSystem, []uint64{4294967295}},
		{NrSetTimer, []uint64{uint64(HwClock), 1, 1}},
		{NrSetTimer, []uint64{uint64(ExecClock), 1, 1}},
		{NrSetTimer, []uint64{uint64(HwClock), 1, uint64(uint64(math.MaxInt64) + 1)}},
	}
	for _, tr := range triggers {
		k := newTestKernel(t, PatchedFaults())
		res, err := runSystemCall(t, k, tr.nr, tr.args...)
		if err != nil {
			t.Fatalf("%v%v: %v", tr.nr, tr.args, err)
		}
		mustRet(t, res, InvalidParam)
		st := k.Status()
		if st.State != KStateRunning || st.ColdResets+st.WarmResets != 0 {
			t.Fatalf("%v%v left the patched kernel in %+v", tr.nr, tr.args, st)
		}
		if crashed, _ := k.Machine().Crashed(); crashed {
			t.Fatalf("%v%v crashed the simulator under the patched kernel", tr.nr, tr.args)
		}
	}
}
