package xm

import (
	"errors"
	"fmt"

	"xmrobust/internal/cover"
	"xmrobust/internal/sparc"
)

// KState is the hypervisor execution state.
type KState int

// Kernel states.
const (
	KStateRunning KState = iota
	KStateHalted
)

func (s KState) String() string {
	if s >= 0 && int(s) < len(kStateNames) {
		return kStateNames[s]
	}
	return "HALTED"
}

// KernelStatus is the host-side snapshot of the hypervisor, the source of
// the "separation kernel health specifics" the campaign logs per test.
type KernelStatus struct {
	State       KState
	ColdResets  uint32
	WarmResets  uint32
	MAFCount    uint64
	CurrentPlan int
	HMEvents    uint32
	HaltDetail  string
}

// slotCtx is the execution context of the partition currently holding the
// processor.
type slotCtx struct {
	p      *Partition
	start  Time
	budget Time
	used   Time
	// overrun latches when used exceeds budget mid-service (the
	// temporal-isolation violation of paper MSC-3).
	overrun        bool
	overrunDetail  string
	overrunHandled bool
}

// remaining returns the slot budget left.
func (sc *slotCtx) remaining() Time {
	if sc.used >= sc.budget {
		return 0
	}
	return sc.budget - sc.used
}

// guestStop is the panic payload used to model "control does not return to
// the guest": partition halted/suspended/reset mid-hypercall, system reset,
// hypervisor halt, or simulator crash. It never escapes the scheduler.
type guestStop struct{ reason string }

// bootCost is the virtual time a partition incarnation spends booting.
const bootCost Time = 10

// Kernel is the separation kernel instance: it owns the machine, enforces
// the cyclic schedule and spatial separation, and serves hypercalls.
type Kernel struct {
	machine *sparc.Machine
	cfg     Config
	faults  FaultSet
	hm      *healthMonitor

	parts    []*Partition
	ports    []*port
	channels []*channel

	curPlan  int
	nextPlan int
	mafCount uint64

	state      KState
	haltDetail string

	coldResets uint32
	warmResets uint32
	// pendingSysReset is latched by XM_reset_system (or an HM action) and
	// applied at the end of the current slot.
	pendingSysReset bool
	pendingSysCold  bool

	// cur is the active slot context while a partition executes.
	cur *slotCtx

	// hypercallCount counts dispatched hypercalls (diagnostics).
	hypercallCount uint64

	// cover is the optional edge-coverage sink (see coverage.go); nil
	// keeps the kernel uninstrumented. coverNr is the hypercall being
	// dispatched, for attributing HM events to the service that raised
	// them (0 outside any dispatch).
	cover   *cover.Map
	coverNr Nr
}

// Option configures a Kernel at construction.
type Option func(*Kernel)

// WithFaults selects the vulnerability set (default LegacyFaults).
func WithFaults(f FaultSet) Option { return func(k *Kernel) { k.faults = f } }

// WithMachine supplies a pre-built machine (default: NewDefaultMachine).
func WithMachine(m *sparc.Machine) Option { return func(k *Kernel) { k.machine = m } }

// New boots a kernel from the static configuration. The configuration is
// validated; partitions start in the BOOT state and begin executing when
// RunMajorFrames schedules them.
func New(cfg Config, opts ...Option) (*Kernel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("xm: %w", err)
	}
	k := &Kernel{cfg: cfg, faults: LegacyFaults(), nextPlan: -1}
	for _, o := range opts {
		o(k)
	}
	if k.machine == nil {
		k.machine = sparc.NewDefaultMachine()
	}
	k.hm = newHealthMonitor(cfg.HMActions)
	for _, pc := range cfg.Partitions {
		k.parts = append(k.parts, newPartition(pc))
	}
	for i := range cfg.Channels {
		k.channels = append(k.channels, newChannel(cfg.Channels[i]))
	}
	for _, p := range k.parts {
		p.reset(true)
	}
	return k, nil
}

// Recycle returns the kernel to the state New left it in without
// reallocating its object graph: partitions go back to BOOT with fresh
// incarnation counters and rebuilt address spaces, channels and ports
// clear, the health-monitor log and counters wipe, and scheduling
// restarts at plan 0, MAF 0. Attached programs are detached — reattach
// guest software before running frames.
//
// The machine is deliberately untouched: Recycle owns the host-side
// state only, and the caller owns machine state (restore a snapshot
// taken at the same point in the machine's life — for a kernel that has
// run no frames, the power-on state, since construction never writes to
// the machine). Options are re-applied after the reset, so a per-run
// coverage sink, fault set or replacement machine can be supplied
// exactly as to New.
//
// A recycled kernel is indistinguishable from a freshly constructed one
// by guests and by every accessor: batch executors lean on that to reuse
// one kernel across a lease of tests.
func (k *Kernel) Recycle(opts ...Option) {
	k.curPlan, k.nextPlan = 0, -1
	k.mafCount = 0
	k.state = KStateRunning
	k.haltDetail = ""
	k.coldResets, k.warmResets = 0, 0
	k.pendingSysReset, k.pendingSysCold = false, false
	k.cur = nil
	k.hypercallCount = 0
	k.cover, k.coverNr = nil, 0
	k.faults = LegacyFaults()
	k.hm.recycle()
	k.ports = k.ports[:0]
	for _, ch := range k.channels {
		ch.reset()
	}
	for _, p := range k.parts {
		p.program = nil
		p.bootCount = 0
		p.reset(true)
		// The fault-injection "mmu" site flips bits in the space's region
		// descriptors; rebuilding restores the configured layout
		// unconditionally rather than trusting the last test's history.
		p.rebuildSpace()
	}
	for _, o := range opts {
		o(k)
	}
}

// Machine returns the underlying machine.
func (k *Kernel) Machine() *sparc.Machine { return k.machine }

// Config returns the static configuration.
func (k *Kernel) Config() Config { return k.cfg }

// Faults returns the active fault set.
func (k *Kernel) Faults() FaultSet { return k.faults }

// Status snapshots the hypervisor state.
func (k *Kernel) Status() KernelStatus {
	return KernelStatus{
		State: k.state, ColdResets: k.coldResets, WarmResets: k.warmResets,
		MAFCount: k.mafCount, CurrentPlan: k.curPlan,
		HMEvents: k.hm.seq, HaltDetail: k.haltDetail,
	}
}

// PartitionStatus snapshots partition id.
func (k *Kernel) PartitionStatus(id int) (PartitionStatus, bool) {
	if id < 0 || id >= len(k.parts) {
		return PartitionStatus{}, false
	}
	return k.parts[id].status(), true
}

// NumPartitions returns the number of configured partitions.
func (k *Kernel) NumPartitions() int { return len(k.parts) }

// HMEntries returns a copy of the health-monitor log.
func (k *Kernel) HMEntries() []HMLogEntry { return k.hm.entries() }

// HypercallCount returns the number of hypercalls dispatched since boot.
func (k *Kernel) HypercallCount() uint64 { return k.hypercallCount }

// AttachProgram hosts guest software in partition id.
func (k *Kernel) AttachProgram(id int, prog Program) error {
	if id < 0 || id >= len(k.parts) {
		return fmt.Errorf("xm: no partition %d", id)
	}
	k.parts[id].program = prog
	return nil
}

// ProgramOf returns the guest software hosted in partition id (nil when
// the partition is empty or unknown). Test harnesses use it to read state
// back out of their programs.
func (k *Kernel) ProgramOf(id int) Program {
	if id < 0 || id >= len(k.parts) {
		return nil
	}
	return k.parts[id].program
}

// PartitionDataArea returns the first writable memory area of partition id
// — where the fuzz harness places guest-side test buffers.
func (k *Kernel) PartitionDataArea(id int) (sparc.Region, bool) {
	if id < 0 || id >= len(k.parts) {
		return sparc.Region{}, false
	}
	return k.parts[id].dataArea()
}

// PartitionSpace returns partition id's MMU view (nil when the id is not
// configured) — the injection surface for single-event upsets in the MMU
// context. A partition reset rebuilds the space from the static
// configuration, clearing any upset, as a real context reload would.
func (k *Kernel) PartitionSpace(id int) *sparc.Space {
	if id < 0 || id >= len(k.parts) {
		return nil
	}
	return k.parts[id].space
}

// WriteGuest writes into a partition's space from the host harness,
// enforcing the partition's own access rights.
func (k *Kernel) WriteGuest(id int, addr sparc.Addr, data []byte) error {
	if id < 0 || id >= len(k.parts) {
		return fmt.Errorf("xm: no partition %d", id)
	}
	if tr := k.parts[id].space.Check(addr, uint32(len(data)), sparc.PermWrite); tr != nil {
		return tr
	}
	if tr := k.machine.Write(addr, data); tr != nil {
		return tr
	}
	return nil
}

// ReadGuest reads from a partition's space from the host harness.
func (k *Kernel) ReadGuest(id int, addr sparc.Addr, size uint32) ([]byte, error) {
	if id < 0 || id >= len(k.parts) {
		return nil, fmt.Errorf("xm: no partition %d", id)
	}
	if tr := k.parts[id].space.Check(addr, size, sparc.PermRead); tr != nil {
		return nil, tr
	}
	data, tr := k.machine.Read(addr, size)
	if tr != nil {
		return nil, tr
	}
	return data, nil
}

// ErrHalted is returned by RunMajorFrames when the hypervisor halted
// (XM_halt_system or a fatal health-monitor action).
var ErrHalted = errors.New("xm: hypervisor halted")

// RunMajorFrames executes n complete major frames of the active scheduling
// plan. It returns nil on normal completion, ErrHalted if the hypervisor
// halted, or sparc.ErrCrashed if the simulator died.
func (k *Kernel) RunMajorFrames(n int) error {
	for i := 0; i < n; i++ {
		if err := k.runMajorFrame(); err != nil {
			return err
		}
		if k.state != KStateRunning {
			return ErrHalted
		}
	}
	return nil
}

func (k *Kernel) runMajorFrame() error {
	plan := k.cfg.Plans[k.curPlan]
	base := k.machine.Now()
	for _, slot := range plan.Slots {
		if err := k.machine.AdvanceTo(base + slot.Start); err != nil {
			return err
		}
		if k.state != KStateRunning {
			return nil
		}
		if err := k.runSlot(slot, base); err != nil {
			return err
		}
		if k.pendingSysReset {
			k.applySystemReset()
			return nil // frame abandoned; scheduling restarts next frame
		}
		if k.state != KStateRunning {
			return nil
		}
	}
	if err := k.machine.AdvanceTo(base + plan.MajorFrame); err != nil {
		return err
	}
	k.mafCount++
	if k.nextPlan >= 0 {
		k.curPlan = k.nextPlan
		k.nextPlan = -1
	}
	return nil
}

// slotEnv bundles a slot context with its guest environment in a single
// allocation. Each slot still gets a fresh identity: guest runtimes
// retain their boot-time environment, and that environment must keep
// observing its own slot, so the pair cannot be recycled across slots.
type slotEnv struct {
	sc  slotCtx
	env guestEnv
}

func (k *Kernel) runSlot(slot SlotConfig, base Time) error {
	p := k.parts[slot.PartitionID]
	se := &slotEnv{sc: slotCtx{p: p, start: base + slot.Start, budget: slot.Duration}}
	sc, env := &se.sc, &se.env
	env.k, env.sc = k, sc
	k.cur = sc
	defer func() { k.cur = nil }()

	if p.state == PStateBoot && p.program != nil {
		// The partition enters NORMAL mode as it boots, so boot code may
		// already invoke hypercalls (create ports, arm timers).
		p.state = PStateNormal
		p.booted = true
		k.charge(bootCost)
		k.guardedBoot(p.program, env)
	}
	for p.state == PStateNormal && k.state == KStateRunning && !k.pendingSysReset {
		if p.program == nil {
			break
		}
		if sc.remaining() <= 0 {
			break
		}
		before := sc.used
		cont := k.guardedStep(p.program, env)
		if sc.used == before {
			// A step always consumes at least 1µs of the slot: guest code
			// cannot execute in zero time.
			k.charge(1)
		}
		if err := k.sync(sc); err != nil {
			return err
		}
		k.handleOverrun(sc)
		if !cont {
			break
		}
	}
	// The slot always runs to its end: partitions never donate time.
	if err := k.machine.AdvanceTo(sc.start + sc.budget); err != nil {
		return err
	}
	return nil
}

// guarded runs guest code, absorbing the guestStop control-flow panic.
func (k *Kernel) guarded(f func()) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(guestStop); ok {
				return
			}
			panic(r)
		}
	}()
	f()
}

// guardedBoot runs a program's Boot hook under the guestStop guard,
// without the closure allocation of guarded.
func (k *Kernel) guardedBoot(prog Program, env Env) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(guestStop); ok {
				return
			}
			panic(r)
		}
	}()
	prog.Boot(env)
}

// guardedStep runs one program step under the guestStop guard. A step
// aborted by guestStop reports cont=true, exactly as the closure-based
// form left the flag untouched — the scheduler's loop conditions decide
// whether the partition keeps running.
func (k *Kernel) guardedStep(prog Program, env Env) (cont bool) {
	cont = true
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(guestStop); ok {
				return
			}
			panic(r)
		}
	}()
	return prog.Step(env)
}

// charge burns d microseconds of the current slot. Running past the budget
// is not by itself a violation — guest compute is simply preempted at the
// slot boundary. A temporal-isolation violation is declared only by
// non-preemptible kernel services (see XM_multicall) via declareOverrun.
func (k *Kernel) charge(d Time) {
	if sc := k.cur; sc != nil {
		sc.used += d
		sc.p.execClock += d
	}
}

// declareOverrun latches a temporal-isolation violation on the current
// slot: kernel-service work exceeded the slot budget and the scheduler
// could not context-switch on time.
func (k *Kernel) declareOverrun(detail string) {
	if sc := k.cur; sc != nil && !sc.overrun {
		sc.overrun = true
		sc.overrunDetail = detail
	}
}

// sync advances the machine clock to the partition's current position in
// its slot, firing any due hardware timers, then delivers due exec-clock
// timers.
func (k *Kernel) sync(sc *slotCtx) error {
	pos := sc.used
	if pos > sc.budget {
		pos = sc.budget
	}
	if err := k.machine.AdvanceTo(sc.start + pos); err != nil {
		return err
	}
	k.processExecTimers(sc.p)
	return nil
}

// handleOverrun reports a latched slot overrun to the health monitor once.
func (k *Kernel) handleOverrun(sc *slotCtx) {
	if !sc.overrun || sc.overrunHandled {
		return
	}
	sc.overrunHandled = true
	k.covKernel(coverKernelSlotOverrun)
	k.raiseHM(HMEvSchedOverrun, sc.p, sc.overrunDetail)
}

// halt stops the hypervisor.
func (k *Kernel) halt(detail string) {
	if k.state == KStateRunning {
		k.state = KStateHalted
		k.haltDetail = detail
		k.machine.Timer(0).Disarm()
		k.covKernel(coverKernelHalt)
	}
}

// requestSystemReset latches a system reset to apply at slot end.
func (k *Kernel) requestSystemReset(cold bool) {
	k.pendingSysReset = true
	k.pendingSysCold = cold
}

// applySystemReset reboots the hypervisor in place: partitions restart,
// ports close, the initial plan is restored. A cold reset also clears the
// health-monitor history and partition clocks; a warm reset preserves them
// for post-mortem reading (as the XM user manual specifies).
func (k *Kernel) applySystemReset() {
	cold := k.pendingSysCold
	k.pendingSysReset = false
	if cold {
		k.coldResets++
		k.covKernel(coverKernelColdReset)
	} else {
		k.warmResets++
		k.covKernel(coverKernelWarmReset)
	}
	k.hm.reset(cold)
	// Truncate rather than drop: the parked port structs are reused by
	// the next incarnation's create calls (see portSlot).
	k.ports = k.ports[:0]
	for _, ch := range k.channels {
		ch.reset()
	}
	for _, p := range k.parts {
		p.reset(cold)
	}
	k.curPlan = 0
	k.nextPlan = -1
	k.machine.Timer(0).Disarm()
}

// raiseHM records a health-monitor event and applies the configured action.
// p names the offending partition; nil means kernel scope.
func (k *Kernel) raiseHM(ev HMEvent, p *Partition, detail string) HMAction {
	pid := -1
	if p != nil {
		pid = p.ID()
	}
	action := k.hm.record(k.machine.Now(), ev, p == nil, pid, detail)
	if k.cover != nil {
		k.cover.Hit(CoverSiteHM(k.coverNr, ev, action))
	}
	switch action {
	case HMActHaltPartition:
		if p != nil {
			p.halt(detail)
		}
	case HMActSuspendPartition:
		if p != nil {
			p.suspend(detail)
		}
	case HMActColdResetPartition:
		if p != nil {
			p.reset(true)
		}
	case HMActWarmResetPartition:
		if p != nil {
			p.reset(false)
		}
	case HMActHaltHypervisor:
		k.halt(detail)
	case HMActColdResetHypervisor:
		k.requestSystemReset(true)
	case HMActWarmResetHypervisor:
		k.requestSystemReset(false)
	case HMActPropagate:
		if p != nil {
			p.raiseVIRQ(31) // virtual trap line
		}
	}
	return action
}

// --- virtual timer machinery -------------------------------------------

// armHwTimer programs partition p's hardware-clock virtual timer and
// reprograms the physical timer unit.
func (k *Kernel) armHwTimer(p *Partition, expiry, interval Time) {
	p.timers[0] = vTimer{armed: true, expiry: expiry, interval: interval}
	k.reprogramHwTimer()
}

// reprogramHwTimer points the physical unit at the earliest armed virtual
// expiry.
func (k *Kernel) reprogramHwTimer() {
	earliest := Time(0)
	found := false
	for _, p := range k.parts {
		t := p.timers[0]
		if t.armed && (!found || t.expiry < earliest) {
			earliest, found = t.expiry, true
		}
	}
	if !found {
		k.machine.Timer(0).Disarm()
		return
	}
	k.machine.Timer(0).Arm(earliest, k.hwTimerFired)
}

// hwTimerFired is the kernel's timer trap handler for the hardware clock.
// A periodic interval below timerHandlerLatency means the next expiry is
// already in the past when the handler re-arms it ("the next execution
// time is always expired by the time it is checked"), so the handler
// re-enters itself and the kernel stack overflows — paper issue TMR-1.
// Missed expiries of sane periodic timers are coalesced, as the real
// kernel's catch-up loop does.
func (k *Kernel) hwTimerFired(m *sparc.Machine, unit int, at Time) {
	if k.state != KStateRunning {
		return
	}
	now := m.Now()
	for _, p := range k.parts {
		t := &p.timers[0]
		if !t.armed || t.expiry > now {
			continue
		}
		t.fires++
		p.raiseVIRQ(vtimerVIRQ)
		switch {
		case t.interval > 0:
			if t.interval < timerHandlerLatency {
				t.armed = false
				k.covKernel(coverKernelTimerStorm)
				k.raiseHM(HMEvFatalError, nil,
					"kernel stack overflow: recursive timer handler (interval below handler latency)")
				return
			}
			t.expiry += t.interval
			if t.expiry <= now {
				t.expiry = now + t.interval
			}
		default:
			// One-shot, including the legacy negative-interval arm of
			// TMR-3: fire once, disarm.
			t.armed = false
		}
	}
	k.reprogramHwTimer()
}

// processExecTimers delivers due execution-clock timers for the running
// partition. On the execution clock the recursion does not stay inside the
// kernel: it races the context switch, and the paper observed the
// resulting timer trap killing the TSIM simulator itself (TMR-2), which
// the machine models as a crash.
func (k *Kernel) processExecTimers(p *Partition) {
	t := &p.timers[1]
	for t.armed && p.execClock >= t.expiry {
		t.fires++
		p.raiseVIRQ(vtimerVIRQ)
		if t.interval > 0 {
			if t.interval < timerHandlerLatency {
				t.armed = false
				k.covKernel(coverKernelExecCrash)
				k.machine.Crash("timer trap escaped the exec-clock handler; simulator aborted")
				return
			}
			t.expiry += t.interval
			if t.expiry <= p.execClock {
				t.expiry = p.execClock + t.interval
			}
		} else {
			t.armed = false
		}
	}
}
