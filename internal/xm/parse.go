package xm

// This file holds the string→enum inversions of the kernel's state and
// return-code vocabularies. Campaign-log readers (campaign/jsonlog) need
// them to reconstruct execution logs from serialised records; keeping the
// inverse tables here, generated at init from the same name tables the
// String methods render from, means a new enum value can never drift out
// of sync with its parser.

// kStateNames is the KState name table; String and ParseKState share it.
var kStateNames = [...]string{
	KStateRunning: "RUNNING",
	KStateHalted:  "HALTED",
}

// pStateValues and kStateValues are the generated inverse lookup maps.
var (
	pStateValues = invertNames(pstateNames[:])
	kStateValues = invertNames(kStateNames[:])
	retCodeNames = invertRetNames()
)

// invertNames builds the string→index inverse of a dense name table.
func invertNames(names []string) map[string]int {
	inv := make(map[string]int, len(names))
	for i, n := range names {
		if n != "" {
			inv[n] = i
		}
	}
	return inv
}

func invertRetNames() map[string]RetCode {
	inv := make(map[string]RetCode, len(retNames))
	for rc, n := range retNames {
		inv[n] = rc
	}
	return inv
}

// ParsePState inverts PState.String (ok=false for unknown names).
func ParsePState(s string) (PState, bool) {
	v, ok := pStateValues[s]
	return PState(v), ok
}

// ParseKState inverts KState.String (ok=false for unknown names).
func ParseKState(s string) (KState, bool) {
	v, ok := kStateValues[s]
	return KState(v), ok
}

// ParseRetCode inverts RetCode.String for the symbolic error names
// (ok=false for unknown or value-carrying names).
func ParseRetCode(s string) (RetCode, bool) {
	rc, ok := retCodeNames[s]
	return rc, ok
}
