package xm

import "xmrobust/internal/sparc"

// --- Sparc V8 Specific -------------------------------------------------------
//
// Para-virtualised replacements for the privileged SPARC instructions a
// guest OS cannot execute directly under the hypervisor. All parameters
// are validated; the paper's campaign raised no issues in this category.

// atomicOp selects the read-modify-write operation of the atomic services.
type atomicOp int

const (
	atomicAdd atomicOp = iota
	atomicAnd
	atomicOr
)

// hcSparcAtomic implements XM_sparc_atomic_{add,and,or}(dest, value): an
// interrupt-atomic read-modify-write on a naturally aligned word in the
// caller's space. Returns the new value's low 31 bits.
func (k *Kernel) hcSparcAtomic(caller *Partition, dest sparc.Addr, value uint32, op atomicOp) RetCode {
	if uint32(dest)%4 != 0 {
		return InvalidParam
	}
	if tr := caller.space.Check(dest, 4, sparc.PermRead|sparc.PermWrite); tr != nil {
		return InvalidParam
	}
	old, tr := k.machine.Read32(dest)
	if tr != nil {
		return InvalidParam
	}
	var nv uint32
	switch op {
	case atomicAdd:
		k.cov(NrSparcAtomicAdd, 0)
		nv = old + value
	case atomicAnd:
		k.cov(NrSparcAtomicAnd, 0)
		nv = old & value
	case atomicOr:
		k.cov(NrSparcAtomicOr, 0)
		nv = old | value
	}
	if tr := k.machine.Write32(dest, nv); tr != nil {
		return InvalidParam
	}
	return RetCode(nv & 0x7FFFFFFF)
}

// numIOPorts is the size of the simulated I/O register bank the port
// services may address.
const numIOPorts = 64

// hcSparcInPort implements XM_sparc_inport(port, value*): reads one I/O
// register into guest memory. Requires the configuration to grant the
// partition I/O access.
func (k *Kernel) hcSparcInPort(caller *Partition, portNo uint32, ptr sparc.Addr) RetCode {
	if !caller.cfg.IOPorts {
		return PermError
	}
	if portNo >= numIOPorts {
		return InvalidParam
	}
	if !k.guestWritable(caller, ptr, 4) {
		return InvalidParam
	}
	v, tr := k.machine.Read32(k.machine.Config().IOBase + sparc.Addr(portNo*4))
	if tr != nil {
		return InvalidParam
	}
	if !k.copyToGuest(caller, ptr, be32(v)) {
		return InvalidParam
	}
	return OK
}

// hcSparcOutPort implements XM_sparc_outport(port, value): writes one I/O
// register.
func (k *Kernel) hcSparcOutPort(caller *Partition, portNo, value uint32) RetCode {
	if !caller.cfg.IOPorts {
		return PermError
	}
	if portNo >= numIOPorts {
		return InvalidParam
	}
	if tr := k.machine.Write32(k.machine.Config().IOBase+sparc.Addr(portNo*4), value); tr != nil {
		return InvalidParam
	}
	return OK
}

// psrWritableMask is the set of PSR bits a guest may set through
// XM_sparc_set_psr (condition codes, the ET/PIL fields the hypervisor
// virtualises). Supervisor and version bits are not writable.
const psrWritableMask uint32 = 0x00F00F20

// hcSparcSetPsr implements XM_sparc_set_psr(psr).
func (k *Kernel) hcSparcSetPsr(caller *Partition, psr uint32) RetCode {
	if psr&^psrWritableMask != 0 {
		return InvalidParam
	}
	caller.psr = psr
	return OK
}

// hcSparcWriteTbr implements XM_sparc_write_tbr(tbr): installs the guest's
// virtual trap base, which must be 4 KiB aligned and inside the caller's
// space.
func (k *Kernel) hcSparcWriteTbr(caller *Partition, tbr uint32) RetCode {
	if tbr%4096 != 0 {
		k.cov(NrSparcWriteTbr, 0) // unaligned trap base
		return InvalidParam
	}
	if tr := caller.space.Check(sparc.Addr(tbr), 4096, sparc.PermRead); tr != nil {
		k.cov(NrSparcWriteTbr, 1) // trap table outside the caller's space
		return InvalidParam
	}
	caller.tbr = tbr
	return OK
}

// hcSparcIFlush implements XM_sparc_iflush(addr): flushes the instruction
// cache line holding addr, which must be mapped by the caller.
func (k *Kernel) hcSparcIFlush(caller *Partition, addr sparc.Addr) RetCode {
	if tr := caller.space.Check(addr, 4, sparc.PermRead); tr != nil {
		return InvalidParam
	}
	k.charge(1)
	return OK
}
