package xm

// Kernel edge-coverage instrumentation. The kernel optionally records
// which control-flow edges a run exercised into a cover.Map supplied at
// construction (WithCoverage); uninstrumented runs carry a nil sink and
// pay one pointer comparison per potential site.
//
// Site identifiers are kind<<cover.KindBits | payload:
//
//   - dispatch sites pair the hypercall number with a compressed return
//     code, so every distinct (service, outcome) edge the campaign ever
//     provokes is one bit;
//   - HM sites pair the event and configured action with the hypercall
//     that was being dispatched when the health monitor fired (0 when
//     the event arose outside a dispatch, e.g. a timer trap);
//   - service sites are hand-placed branch markers inside the svc_*.go
//     handlers, covering internal paths return codes cannot distinguish
//     (e.g. which clock a timer armed, which mutation an atomic applied);
//   - kernel sites mark lifecycle transitions (halt, system reset,
//     slot overrun, timer-storm recursion).

import (
	"math/bits"

	"xmrobust/internal/cover"
)

// Site kinds (the top two bits of a site identifier).
const (
	coverKindDispatch = 0 << cover.KindBits
	coverKindHM       = 1 << cover.KindBits
	coverKindSvc      = 2 << cover.KindBits
	coverKindKernel   = 3 << cover.KindBits
)

// Kernel lifecycle site identifiers.
const (
	coverKernelHalt        = 0 // hypervisor halted
	coverKernelColdReset   = 1 // system cold reset applied
	coverKernelWarmReset   = 2 // system warm reset applied
	coverKernelSlotOverrun = 3 // temporal-isolation violation latched
	coverKernelTimerStorm  = 4 // hw-clock timer handler recursion (TMR-1)
	coverKernelExecCrash   = 5 // exec-clock timer storm killed the simulator (TMR-2)
)

// coverRetIndex compresses a return code into 6 bits: 0 for XM_OK, the
// error number for the manual's negative codes, and a log2 bucket for
// positive codes (descriptors, byte counts, register images) so that
// unbounded value spaces cannot flood the edge map.
func coverRetIndex(ret RetCode) uint32 {
	switch {
	case ret == OK:
		return 0
	case ret < 0:
		n := uint32(-ret)
		if n > 31 {
			n = 31
		}
		return n
	default:
		i := 32 + uint32(bits.Len32(uint32(ret)))
		if i > 63 {
			i = 63
		}
		return i
	}
}

// CoverSiteDispatch is the edge "hypercall nr returned ret".
func CoverSiteDispatch(nr Nr, ret RetCode) uint32 {
	return coverKindDispatch | (uint32(nr)&63)<<6 | coverRetIndex(ret)
}

// CoverSiteHM is the edge "the health monitor handled ev with act while
// dispatching nr" (nr 0: outside any dispatch).
func CoverSiteHM(nr Nr, ev HMEvent, act HMAction) uint32 {
	return coverKindHM | (uint32(nr)&63)<<7 | (uint32(ev)&7)<<4 | uint32(act)&15
}

// CoverSiteSvc is a hand-placed branch marker inside the service
// implementing nr; branch numbers are unique per service.
func CoverSiteSvc(nr Nr, branch uint8) uint32 {
	return coverKindSvc | (uint32(nr)&63)<<6 | uint32(branch)&63
}

// CoverSiteKernel is a kernel lifecycle transition.
func CoverSiteKernel(id uint8) uint32 {
	return coverKindKernel | uint32(id)
}

// cov marks a service branch site. It is the instrumentation call the
// svc_*.go handlers use; on uninstrumented kernels it is one nil check.
func (k *Kernel) cov(nr Nr, branch uint8) {
	if k.cover != nil {
		k.cover.Hit(CoverSiteSvc(nr, branch))
	}
}

// covKernel marks a lifecycle site.
func (k *Kernel) covKernel(id uint8) {
	if k.cover != nil {
		k.cover.Hit(CoverSiteKernel(id))
	}
}

// WithCoverage attaches an edge-coverage sink: every site the run lights
// up is recorded into m. A nil m (the default) disables collection.
func WithCoverage(m *cover.Map) Option {
	return func(k *Kernel) { k.cover = m }
}

// Coverage returns the attached coverage sink (nil when collection is
// off).
func (k *Kernel) Coverage() *cover.Map { return k.cover }
