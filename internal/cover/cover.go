// Package cover is the edge-coverage substrate of the coverage-guided
// feedback loop: a cheap, fixed-size, allocation-free bitmap over the
// simulated kernel's instrumentation sites. The kernel (package xm) maps
// each observable control-flow edge — hypercall dispatch outcome,
// service-internal branch, health-monitor event, lifecycle transition —
// to a site identifier below NumSites; a Map records which sites one
// execution lit up.
//
// Maps compose: the campaign engine collects one Map per test, the corpus
// store merges them into the global coverage frontier, and CountNew is
// the admission signal of the feedback plan ("did this dataset execute a
// kernel edge no earlier dataset did?"). Signature hashes a map into a
// stable 64-bit coverage signature, the same role the CRASH cluster key
// plays for failures: tests with equal signatures exercised identical
// kernel edge sets and are behaviourally redundant.
package cover

import "math/bits"

const (
	// KindBits is the payload width of one site kind; site identifiers
	// are kind<<KindBits | payload (see package xm's encoders).
	KindBits = 13
	// NumSites is the size of the site identifier space: 4 kinds of
	// 2^KindBits sites. At one bit per site a Map is 4 KiB.
	NumSites = 4 << KindBits

	words = NumSites / 64
)

// Map is a fixed-size edge-coverage bitmap. The zero value is an empty
// map ready for use; Hit/Merge/Count never allocate.
type Map struct {
	bits [words]uint64
}

// Hit marks one site as covered. Sites at or above NumSites wrap — the
// encoders never emit them, but a corrupt site must not panic the kernel
// hot path.
func (m *Map) Hit(site uint32) {
	site %= NumSites
	m.bits[site>>6] |= 1 << (site & 63)
}

// Has reports whether a site is covered.
func (m *Map) Has(site uint32) bool {
	site %= NumSites
	return m.bits[site>>6]&(1<<(site&63)) != 0
}

// Count returns the number of covered sites.
func (m *Map) Count() int {
	n := 0
	for _, w := range m.bits {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether no site is covered.
func (m *Map) Empty() bool {
	for _, w := range m.bits {
		if w != 0 {
			return false
		}
	}
	return true
}

// Reset clears the map.
func (m *Map) Reset() {
	m.bits = [words]uint64{}
}

// CountNew returns how many sites o covers that m does not — the
// admission signal of the corpus store, without mutating either map.
func (m *Map) CountNew(o *Map) int {
	n := 0
	for i, w := range o.bits {
		n += bits.OnesCount64(w &^ m.bits[i])
	}
	return n
}

// Merge ORs o into m and returns the number of sites that were new to m.
func (m *Map) Merge(o *Map) int {
	n := 0
	for i, w := range o.bits {
		if nw := w &^ m.bits[i]; nw != 0 {
			n += bits.OnesCount64(nw)
			m.bits[i] |= nw
		}
	}
	return n
}

// Signature hashes the covered site set into a stable 64-bit value
// (FNV-1a over the bitmap words). Equal signatures mean identical edge
// sets; the feedback report and the corpus file carry it as the compact
// coverage identity of a test.
func (m *Map) Signature() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, w := range m.bits {
		for s := 0; s < 64; s += 8 {
			h ^= (w >> s) & 0xff
			h *= prime
		}
	}
	return h
}

// Sites returns the covered site identifiers in ascending order — the
// sparse serialised form campaign log records carry.
func (m *Map) Sites() []uint32 {
	out := make([]uint32, 0, m.Count())
	for i, w := range m.bits {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, uint32(i*64+b))
			w &^= 1 << b
		}
	}
	return out
}

// FromSites rebuilds a map from its sparse form.
func FromSites(sites []uint32) *Map {
	m := &Map{}
	for _, s := range sites {
		m.Hit(s)
	}
	return m
}
