package cover

import (
	"testing"
)

func TestHitCountHas(t *testing.T) {
	var m Map
	if !m.Empty() || m.Count() != 0 {
		t.Fatalf("zero map not empty")
	}
	sites := []uint32{0, 1, 63, 64, 65, NumSites - 1}
	for _, s := range sites {
		m.Hit(s)
	}
	m.Hit(1) // idempotent
	if m.Count() != len(sites) {
		t.Fatalf("Count = %d, want %d", m.Count(), len(sites))
	}
	for _, s := range sites {
		if !m.Has(s) {
			t.Errorf("Has(%d) = false", s)
		}
	}
	if m.Has(2) {
		t.Error("Has(2) = true for unhit site")
	}
	// Out-of-range sites wrap instead of panicking.
	m.Hit(NumSites + 2)
	if !m.Has(2) {
		t.Error("out-of-range Hit did not wrap")
	}
}

func TestMergeCountNew(t *testing.T) {
	var a, b Map
	a.Hit(10)
	a.Hit(20)
	b.Hit(20)
	b.Hit(30)
	b.Hit(40)
	if got := a.CountNew(&b); got != 2 {
		t.Fatalf("CountNew = %d, want 2", got)
	}
	if a.Count() != 2 {
		t.Fatalf("CountNew mutated the receiver")
	}
	if got := a.Merge(&b); got != 2 {
		t.Fatalf("Merge = %d, want 2", got)
	}
	if a.Count() != 4 {
		t.Fatalf("merged Count = %d, want 4", a.Count())
	}
	if got := a.Merge(&b); got != 0 {
		t.Fatalf("re-Merge = %d, want 0", got)
	}
}

func TestSignatureStable(t *testing.T) {
	var a, b, c Map
	for _, s := range []uint32{3, 99, 4097} {
		a.Hit(s)
	}
	for _, s := range []uint32{4097, 3, 99} { // order must not matter
		b.Hit(s)
	}
	c.Hit(3)
	if a.Signature() != b.Signature() {
		t.Error("equal edge sets hash differently")
	}
	if a.Signature() == c.Signature() {
		t.Error("different edge sets collide")
	}
	if (&Map{}).Signature() == a.Signature() {
		t.Error("empty map collides with non-empty")
	}
}

func TestSitesRoundTrip(t *testing.T) {
	var m Map
	want := []uint32{0, 7, 64, 8191, NumSites - 1}
	for _, s := range want {
		m.Hit(s)
	}
	got := m.Sites()
	if len(got) != len(want) {
		t.Fatalf("Sites = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sites = %v, want %v (ascending)", got, want)
		}
	}
	back := FromSites(got)
	if back.Signature() != m.Signature() {
		t.Fatal("FromSites(Sites()) is not the identity")
	}
	back.Reset()
	if !back.Empty() {
		t.Fatal("Reset left covered sites")
	}
}

func BenchmarkHit(b *testing.B) {
	var m Map
	for i := 0; i < b.N; i++ {
		m.Hit(uint32(i))
	}
}

func BenchmarkMerge(b *testing.B) {
	var a, o Map
	for s := uint32(0); s < NumSites; s += 37 {
		o.Hit(s)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Merge(&o)
	}
}
