package main

import (
	"bytes"
	"strings"
	"testing"
)

// smoke runs the command body and returns (exit, stdout, stderr).
func smoke(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestXmreportStaticTablesSmoke(t *testing.T) {
	code, out, _ := smoke(t, "-table", "1")
	if code != 0 || !strings.Contains(out, "TABLE I.") {
		t.Fatalf("-table 1: code %d", code)
	}
	code, out, _ = smoke(t, "-table", "2")
	if code != 0 || !strings.Contains(out, "TABLE II.") {
		t.Fatalf("-table 2: code %d", code)
	}
	code, out, _ = smoke(t, "-table", "2", "-type", "xm_u32_t")
	if code != 0 || !strings.Contains(out, "xm_u32_t") {
		t.Fatalf("-table 2 -type: code %d", code)
	}
}

func TestXmreportCampaignSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full campaign")
	}
	code, out, _ := smoke(t, "-table", "3")
	if code != 0 || !strings.Contains(out, "TABLE III.") {
		t.Fatalf("-table 3: code %d", code)
	}
	if !strings.Contains(out, "CRASH SEVERITY TALLY") {
		t.Fatal("-table 3 omitted the verdict tally")
	}
}

func TestXmreportErrorsExitNonZero(t *testing.T) {
	// No selection: usage error.
	if code, _, _ := smoke(t); code != 2 {
		t.Errorf("bare xmreport: exit %d, want 2", code)
	}
	// Unknown flag: usage error.
	if code, _, _ := smoke(t, "-bogus"); code != 2 {
		t.Errorf("-bogus: exit %d, want 2", code)
	}
	// Unknown table number: usage error (nothing to render).
	if code, _, _ := smoke(t, "-table", "9"); code != 2 {
		t.Errorf("-table 9: exit %d, want 2", code)
	}
	// Unknown data type for table 2: rendering error.
	code, _, stderr := smoke(t, "-table", "2", "-type", "no_such_t")
	if code != 1 || !strings.Contains(stderr, "no dictionary") {
		t.Errorf("-type no_such_t: exit %d stderr %q, want 1", code, stderr)
	}
}
