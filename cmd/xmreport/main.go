// Command xmreport regenerates the paper's tables and figures.
//
//	xmreport -table 1          # Table I: XM data types
//	xmreport -table 2          # Table II: xm_s32_t test-value set
//	xmreport -table 3          # Table III: the test campaign (runs it)
//	xmreport -fig 8            # Fig. 8: campaign distribution (runs it)
//	xmreport -all              # everything
//
// Tables 3 and figure 8 execute the full campaign (a few seconds);
// -patched reports the post-fault-removal kernel instead.
package main

import (
	"flag"
	"fmt"
	"os"

	"xmrobust/internal/campaign"
	"xmrobust/internal/core"
	"xmrobust/internal/dict"
	"xmrobust/internal/report"
	"xmrobust/internal/xm"
)

func main() {
	var (
		tableN   = flag.Int("table", 0, "render table 1, 2 or 3")
		figN     = flag.Int("fig", 0, "render figure 8")
		all      = flag.Bool("all", false, "render every table and figure")
		patched  = flag.Bool("patched", false, "campaign against the patched kernel")
		typeName = flag.String("type", "xm_s32_t", "data type for table 2")
		compare  = flag.Bool("compare", false, "render Table III paper-vs-measured")
	)
	flag.Parse()

	needCampaign := *all || *tableN == 3 || *figN == 8 || *compare
	var rep *core.CampaignReport
	if needCampaign {
		opts := campaign.Options{}
		if *patched {
			opts.Faults = xm.PatchedFaults()
		}
		var err error
		rep, err = core.RunCampaign(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xmreport:", err)
			os.Exit(1)
		}
	}

	printed := false
	if *all || *tableN == 1 {
		fmt.Println(report.TableI())
		printed = true
	}
	if *all || *tableN == 2 {
		fmt.Println(report.TableII(dict.Builtin(), *typeName))
		printed = true
	}
	if *all || *tableN == 3 {
		fmt.Println(report.TableIII(rep))
		fmt.Println(report.Verdicts(rep))
		printed = true
	}
	if *all || *figN == 8 {
		fmt.Println(report.Fig8(rep))
		printed = true
	}
	if *all || *compare {
		fmt.Println(report.CompareTableIII(rep))
		printed = true
	}
	if *all {
		fmt.Println(report.Issues(rep))
	}
	if !printed {
		flag.Usage()
		os.Exit(2)
	}
}
