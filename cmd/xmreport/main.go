// Command xmreport regenerates the paper's tables and figures.
//
//	xmreport -table 1          # Table I: XM data types
//	xmreport -table 2          # Table II: xm_s32_t test-value set
//	xmreport -table 3          # Table III: the test campaign (runs it)
//	xmreport -fig 8            # Fig. 8: campaign distribution (runs it)
//	xmreport -all              # everything
//
// Tables 3 and figure 8 execute the full campaign (a few seconds);
// -patched reports the post-fault-removal kernel instead.
//
// xmreport exits 0 on success, 1 on campaign or rendering errors, 2 on
// usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"xmrobust/internal/campaign"
	"xmrobust/internal/core"
	"xmrobust/internal/dict"
	"xmrobust/internal/report"
	"xmrobust/internal/xm"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable command body; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xmreport", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		tableN   = fs.Int("table", 0, "render table 1, 2 or 3")
		figN     = fs.Int("fig", 0, "render figure 8")
		all      = fs.Bool("all", false, "render every table and figure")
		patched  = fs.Bool("patched", false, "campaign against the patched kernel")
		typeName = fs.String("type", "xm_s32_t", "data type for table 2")
		compare  = fs.Bool("compare", false, "render Table III paper-vs-measured")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	needCampaign := *all || *tableN == 3 || *figN == 8 || *compare
	var rep *core.CampaignReport
	if needCampaign {
		opts := campaign.Options{}
		if *patched {
			opts.Faults = xm.PatchedFaults()
		}
		var err error
		rep, err = core.RunCampaign(opts)
		if err != nil {
			fmt.Fprintln(stderr, "xmreport:", err)
			return 1
		}
	}

	printed := false
	if *all || *tableN == 1 {
		fmt.Fprintln(stdout, report.TableI())
		printed = true
	}
	if *all || *tableN == 2 {
		if _, ok := dict.Builtin().Type(*typeName); !ok {
			fmt.Fprintf(stderr, "xmreport: no dictionary for type %q\n", *typeName)
			return 1
		}
		fmt.Fprintln(stdout, report.TableII(dict.Builtin(), *typeName))
		printed = true
	}
	if *all || *tableN == 3 {
		fmt.Fprintln(stdout, report.TableIII(rep))
		fmt.Fprintln(stdout, report.Verdicts(rep))
		printed = true
	}
	if *all || *figN == 8 {
		fmt.Fprintln(stdout, report.Fig8(rep))
		printed = true
	}
	if *all || *compare {
		fmt.Fprintln(stdout, report.CompareTableIII(rep))
		printed = true
	}
	if *all {
		fmt.Fprintln(stdout, report.Issues(rep))
	}
	if !printed {
		fs.Usage()
		return 2
	}
	return 0
}
