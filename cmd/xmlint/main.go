// Command xmlint is the repository's invariant lint suite as a go vet
// tool. It machine-checks the contracts every PR must preserve:
//
//	determinism  fixed-seed campaigns are byte-reproducible — no
//	             wall-clock, environment, unseeded math/rand, or
//	             map-order-dependent serialisation in the deterministic
//	             packages
//	obsnil       observability handles nil-guard their own methods and
//	             callers never pre-check them, keeping "obs off" at one
//	             nil check on the hot path
//	registry     target/plan/codec registration happens at program
//	             start only, so inventories are complete
//	seqfield     the raw record codec covers every JSONRecord field the
//	             json codec serialises, so the wire format cannot drift
//
// Run it through the go command, which feeds it one type-checked
// package at a time with cached export data:
//
//	go build -o bin/xmlint ./cmd/xmlint
//	go vet -vettool=$(pwd)/bin/xmlint ./...
//
// (or just `make lint`). Legitimate exceptions are annotated in place:
// //xmlint:allow <analyzer> -- <reason>. See internal/lint.
package main

import "xmrobust/internal/lint"

func main() {
	lint.Main(lint.Analyzers()...)
}
