package main

import (
	"bytes"
	"strings"
	"testing"
)

// smoke runs the command body and returns (exit, stdout, stderr).
func smoke(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestXmspecSmoke(t *testing.T) {
	code, out, _ := smoke(t, "api")
	if code != 0 || !strings.Contains(out, "XM_set_timer") {
		t.Fatalf("api: code %d, out %q", code, out[:min(80, len(out))])
	}
	code, out, _ = smoke(t, "dict")
	if code != 0 || !strings.Contains(out, "xm_s32_t") {
		t.Fatalf("dict: code %d", code)
	}
	code, out, _ = smoke(t, "counts")
	if code != 0 || !strings.Contains(out, "TOTAL") {
		t.Fatalf("counts: code %d", code)
	}
	code, out, _ = smoke(t, "mutant", "XM_set_timer", "0")
	if code != 0 || !strings.Contains(out, "XM_set_timer(") {
		t.Fatalf("mutant: code %d, out %q", code, out)
	}
}

func TestXmspecErrorsExitNonZero(t *testing.T) {
	cases := []struct {
		args []string
		want int
	}{
		{nil, 2},
		{[]string{"bogus"}, 2},
		{[]string{"mutant"}, 2},
		{[]string{"mutant", "XM_set_timer", "NaN"}, 2},
		{[]string{"mutant", "XM_no_such_call", "0"}, 1},
		{[]string{"mutant", "XM_set_timer", "999999"}, 1},
	}
	for _, c := range cases {
		if code, _, stderr := smoke(t, c.args...); code != c.want {
			t.Errorf("xmspec %v: exit %d (stderr %q), want %d", c.args, code, stderr, c.want)
		}
	}
}
