// Command xmspec inspects and emits the two kernel-specific XML inputs of
// the test-generation toolset (paper Fig. 2 and Fig. 3), shows the Eq. 1
// combination counts, and renders mutant sources.
//
//	xmspec api                  # emit the API Header XML
//	xmspec dict                 # emit the Data Type XML
//	xmspec counts               # Eq. 1 combinations per tested hypercall
//	xmspec mutant XM_set_timer 0   # render mutant source #0 of a hypercall
package main

import (
	"fmt"
	"os"
	"strconv"

	"xmrobust/internal/apispec"
	"xmrobust/internal/dict"
	"xmrobust/internal/testgen"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: xmspec api | dict | counts | mutant FUNC INDEX")
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	header := apispec.Default()
	d := dict.Builtin()
	switch os.Args[1] {
	case "api":
		out, err := header.Emit()
		if err != nil {
			fmt.Fprintln(os.Stderr, "xmspec:", err)
			os.Exit(1)
		}
		os.Stdout.Write(out)
	case "dict":
		out, err := d.Emit()
		if err != nil {
			fmt.Fprintln(os.Stderr, "xmspec:", err)
			os.Exit(1)
		}
		os.Stdout.Write(out)
	case "counts":
		total := 0
		for _, f := range header.Tested() {
			m, err := testgen.BuildMatrix(f, d)
			if err != nil {
				fmt.Fprintln(os.Stderr, "xmspec:", err)
				os.Exit(1)
			}
			n := m.Combinations()
			total += n
			fmt.Printf("%-32s %5d combinations\n", f.Name, n)
		}
		fmt.Printf("%-32s %5d combinations\n", "TOTAL", total)
	case "mutant":
		if len(os.Args) != 4 {
			usage()
		}
		f, ok := header.Function(os.Args[2])
		if !ok {
			fmt.Fprintf(os.Stderr, "xmspec: unknown hypercall %q\n", os.Args[2])
			os.Exit(1)
		}
		idx, err := strconv.Atoi(os.Args[3])
		if err != nil {
			usage()
		}
		m, err := testgen.BuildMatrix(f, d)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xmspec:", err)
			os.Exit(1)
		}
		datasets := m.Datasets()
		if idx < 0 || idx >= len(datasets) {
			fmt.Fprintf(os.Stderr, "xmspec: index out of range (0..%d)\n", len(datasets)-1)
			os.Exit(1)
		}
		fmt.Print(testgen.RenderMutantC(datasets[idx]))
	default:
		usage()
	}
}
