// Command xmspec inspects and emits the two kernel-specific XML inputs of
// the test-generation toolset (paper Fig. 2 and Fig. 3), shows the Eq. 1
// combination counts, and renders mutant sources.
//
//	xmspec api                  # emit the API Header XML
//	xmspec dict                 # emit the Data Type XML
//	xmspec counts               # Eq. 1 combinations per tested hypercall
//	xmspec mutant XM_set_timer 0   # render mutant source #0 of a hypercall
//
// xmspec exits 0 on success, 1 on errors (unknown hypercall, bad index,
// emission failures), 2 on usage errors.
package main

import (
	"fmt"
	"io"
	"os"
	"strconv"

	"xmrobust/internal/apispec"
	"xmrobust/internal/dict"
	"xmrobust/internal/testgen"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(stderr io.Writer) int {
	fmt.Fprintln(stderr, "usage: xmspec api | dict | counts | mutant FUNC INDEX")
	return 2
}

// run is the testable command body; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		return usage(stderr)
	}
	header := apispec.Default()
	d := dict.Builtin()
	switch args[0] {
	case "api":
		out, err := header.Emit()
		if err != nil {
			fmt.Fprintln(stderr, "xmspec:", err)
			return 1
		}
		stdout.Write(out)
	case "dict":
		out, err := d.Emit()
		if err != nil {
			fmt.Fprintln(stderr, "xmspec:", err)
			return 1
		}
		stdout.Write(out)
	case "counts":
		total := 0
		for _, f := range header.Tested() {
			m, err := testgen.BuildMatrix(f, d)
			if err != nil {
				fmt.Fprintln(stderr, "xmspec:", err)
				return 1
			}
			n := m.Combinations()
			total += n
			fmt.Fprintf(stdout, "%-32s %5d combinations\n", f.Name, n)
		}
		fmt.Fprintf(stdout, "%-32s %5d combinations\n", "TOTAL", total)
	case "mutant":
		if len(args) != 3 {
			return usage(stderr)
		}
		f, ok := header.Function(args[1])
		if !ok {
			fmt.Fprintf(stderr, "xmspec: unknown hypercall %q\n", args[1])
			return 1
		}
		idx, err := strconv.Atoi(args[2])
		if err != nil {
			return usage(stderr)
		}
		m, err := testgen.BuildMatrix(f, d)
		if err != nil {
			fmt.Fprintln(stderr, "xmspec:", err)
			return 1
		}
		datasets := m.Datasets()
		if idx < 0 || idx >= len(datasets) {
			fmt.Fprintf(stderr, "xmspec: index out of range (0..%d)\n", len(datasets)-1)
			return 1
		}
		fmt.Fprint(stdout, testgen.RenderMutantC(datasets[idx]))
	default:
		return usage(stderr)
	}
	return 0
}
