// Command xmrun boots a TSP system and runs it for a number of major
// frames, printing the hypervisor console, partition statuses and the
// health-monitor log — the equivalent of launching TSIM with a packed
// XtratuM image, built on the public pkg/xmrobust API.
//
// With no -config argument it runs the built-in EagleEye TSP testbed with
// its synthetic on-board software; with -config it boots an XM_CF-style
// XML system description with empty partitions (useful for schedule and
// configuration validation).
//
// Usage:
//
//	xmrun [-config system.xml] [-frames N] [-patched] [-quiet]
package main

import (
	"flag"
	"fmt"
	"os"

	"xmrobust/pkg/xmrobust"
)

func main() {
	var (
		cfgPath = flag.String("config", "", "XM_CF-style system description XML")
		frames  = flag.Int("frames", 4, "major frames to run")
		patched = flag.Bool("patched", false, "boot the patched kernel")
		quiet   = flag.Bool("quiet", false, "suppress the guest console dump")
	)
	flag.Parse()

	sysOpts := []xmrobust.SystemOption{}
	if *patched {
		sysOpts = append(sysOpts, xmrobust.WithSystemFaults(xmrobust.PatchedFaults()))
	}
	if *cfgPath != "" {
		data, err := os.ReadFile(*cfgPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xmrun:", err)
			os.Exit(1)
		}
		sysOpts = append(sysOpts, xmrobust.WithConfigXML(data))
	}
	k, err := xmrobust.NewSystem(sysOpts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xmrun:", err)
		os.Exit(1)
	}

	runErr := k.RunMajorFrames(*frames)
	st := k.Status()
	fmt.Printf("system    : %s\n", k.Config().Name)
	fmt.Printf("kernel    : %s (cold resets %d, warm resets %d, %d hypercalls)\n",
		st.State, st.ColdResets, st.WarmResets, k.HypercallCount())
	fmt.Printf("time      : %d us over %d major frames\n", k.Machine().Now(), st.MAFCount)
	if runErr != nil {
		fmt.Printf("run error : %v\n", runErr)
	}
	fmt.Println("partitions:")
	for id := 0; id < k.NumPartitions(); id++ {
		ps, _ := k.PartitionStatus(id)
		extra := ""
		if ps.HaltDetail != "" {
			extra = " — " + ps.HaltDetail
		}
		fmt.Printf("  P%d %-10s %-10s boots=%d exec=%dus%s\n",
			ps.ID, ps.Name, ps.State, ps.BootCount, ps.ExecClock, extra)
	}
	if hm := k.HMEntries(); len(hm) > 0 {
		fmt.Println("health monitor log:")
		for _, e := range hm {
			fmt.Printf("  %s\n", e)
		}
	}
	if !*quiet {
		if console := k.Machine().UART().String(); console != "" {
			fmt.Println("console:")
			fmt.Print(console)
		}
	}
	// Exit non-zero on any kernel-health failure so scripts and CI can
	// gate on the run: a run error (including a hypervisor halt), a dead
	// simulator, or a kernel that is no longer RUNNING.
	if crashed, _ := k.Machine().Crashed(); runErr != nil || crashed || st.State != xmrobust.KStateRunning {
		os.Exit(1)
	}
}
