// Command xmfuzz runs the robustness testing campaign of the paper's case
// study: the data-type fault model applied to the XtratuM-like separation
// kernel on the EagleEye TSP testbed. It reproduces Table III, the CRASH
// tally, Fig. 8 and the §IV.C issue list, and is a thin shell over the
// public pkg/xmrobust API.
//
// By default the campaign runs eagerly in memory. With -stream DIR it runs
// on the streaming pooled engine instead: execution logs are sharded into
// JSON Lines files under DIR, a checkpoint tracks completed tests, and
// -resume continues an interrupted campaign from the last completed
// dataset — the final report is identical to an uninterrupted run's.
//
// xmfuzz exits 0 when the campaign executed cleanly (robustness findings
// are its product, not an error), 1 on campaign/harness errors, 2 on
// usage errors.
//
// The campaign's test plan (-plan) and execution target (-target) are
// both pluggable; -list prints every registered plan strategy and
// backend. -plan phantom runs the §V phantom-parameter extension (every
// parameter-less hypercall under every phantom system state) through the
// same engine as any other plan. -target diff:sim,phantom executes each
// test on the simulated kernel AND the analytical model, recording their
// disagreements as the divergence section of the report — behaviour the
// reference manual does not predict.
//
// -target inject:sim runs the SEU fault-injection campaign: every test
// executes once clean and once under a scheduled bit flip
// (-inject-rate/-inject-sites tune the schedule), and the report gains a
// per-site masking-rate section classifying each upset as masked,
// wrong-result, hm-detected, crash or hang.
//
// A checkpointed campaign records its plan fingerprint, target name and
// injection-schedule signature; -resume refuses a mismatch of any of
// them instead of mixing two campaigns into one log.
//
// Usage:
//
//	xmfuzz [-patched] [-mafs N] [-workers N] [-stress] [-func NAME]
//	       [-plan STRATEGY] [-target BACKEND] [-seed N] [-corpus FILE]
//	       [-inject-rate R] [-inject-sites LIST]
//	       [-cover-stats] [-csv] [-issues] [-progress] [-list]
//	       [-stream DIR] [-shards N] [-resume] [-fresh-machines]
//	       [-ops ADDR]
//
// -progress renders a live stderr line (done/total, tests/sec, ETA) from
// the campaign's observability snapshot; -ops serves the same snapshot —
// plus the full metrics registry and pprof — over HTTP for the duration
// of the run (/metrics, /healthz, /progress, /debug/pprof). Both are off
// by default and cost the engine one nil check per event when off.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"xmrobust/pkg/xmrobust"
)

func main() {
	var (
		patched  = flag.Bool("patched", false, "test the patched kernel (post fault-removal)")
		mafs     = flag.Int("mafs", 0, "major frames per test (0 = default)")
		workers  = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		stress   = flag.Bool("stress", false, "pre-load the system before injection")
		fn       = flag.String("func", "", "restrict the campaign to one hypercall")
		csv      = flag.Bool("csv", false, "emit Table III as CSV")
		issues   = flag.Bool("issues", false, "emit only the issue list")
		progress = flag.Bool("progress", false, "print progress while running")
		phantom  = flag.Bool("phantom", false, "deprecated alias for -plan phantom (the §V extension suite)")
		masking  = flag.Bool("masking", false, "append the fault-masking study (paper Fig. 7)")
		output   = flag.String("o", "", "write the raw campaign log (JSON Lines) to this file")
		stream   = flag.String("stream", "", "run the streaming engine, sharding the campaign log into this directory")
		shards   = flag.Int("shards", 0, "shard writer count for -stream (0 = workers)")
		resume   = flag.Bool("resume", false, "resume an interrupted -stream campaign from its checkpoint")
		fresh    = flag.Bool("fresh-machines", false, "disable machine pooling (one fresh simulator per test)")
		codec    = flag.String("codec", "", "shard record codec for -stream: json (default) or raw (allocation-free; identical bytes)")
		batch    = flag.Int("batch", 0, "tests leased per worker slot on batching targets (0 = unbatched; identical results)")
		plan     = flag.String("plan", "", "test plan: exhaustive (default), pairwise, rand:N, boundary, feedback:N, phantom (see -list)")
		tgt      = flag.String("target", "", "execution target: sim (default), phantom, diff:a,b (see -list)")
		seed     = flag.Int64("seed", 0, "seed for randomised plans (rand:N, feedback:N)")
		corpus   = flag.String("corpus", "", "feedback-plan corpus file (JSON Lines): load parents, append admissions")
		coverCol = flag.Bool("cover-stats", false, "collect kernel edge coverage and report it (feedback plans always do)")
		injRate  = flag.Float64("inject-rate", 1, "inject:* targets: fraction of tests carrying an SEU, in (0,1]")
		injSites = flag.String("inject-sites", "", "inject:* targets: comma-separated flip sites (default all: clock,iu,mmu,ram,timer)")
		opsAddr  = flag.String("ops", "", "serve /metrics, /healthz, /progress and /debug/pprof on this address while the campaign runs")
		list     = flag.Bool("list", false, "list the registered test plans and execution targets, then exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("test plans (-plan):")
		for _, p := range xmrobust.Plans() {
			fmt.Printf("  %-12s %s\n", p.Name, p.Desc)
		}
		fmt.Println("\nexecution targets (-target):")
		for _, t := range xmrobust.Targets() {
			fmt.Printf("  %-12s %s\n", t.Name, t.Desc)
		}
		return
	}

	if *phantom {
		if *plan != "" && *plan != "phantom" {
			fmt.Fprintln(os.Stderr, "xmfuzz: -phantom conflicts with -plan", *plan)
			os.Exit(2)
		}
		*plan = "phantom"
	}
	if *resume && *stream == "" {
		fmt.Fprintln(os.Stderr, "xmfuzz: -resume requires -stream")
		os.Exit(2)
	}
	if *masking && *stream != "" {
		// The masking study needs every classified result in memory —
		// the eager pipeline's job.
		fmt.Fprintln(os.Stderr, "xmfuzz: -masking requires the eager engine (drop -stream)")
		os.Exit(2)
	}

	opts := []xmrobust.Option{
		xmrobust.WithPlan(*plan),
		xmrobust.WithTarget(*tgt),
		xmrobust.WithSeed(*seed),
		xmrobust.WithMAFs(*mafs),
		xmrobust.WithWorkers(*workers),
	}
	if *stress {
		opts = append(opts, xmrobust.WithStress())
	}
	if *patched {
		opts = append(opts, xmrobust.WithPatchedKernel())
	}
	if *fn != "" {
		opts = append(opts, xmrobust.WithFunction(*fn))
	}
	if *corpus != "" {
		opts = append(opts, xmrobust.WithCorpus(*corpus))
	}
	if *injRate != 1 || *injSites != "" {
		var sites []string
		for _, s := range strings.Split(*injSites, ",") {
			if s = strings.TrimSpace(s); s != "" {
				sites = append(sites, s)
			}
		}
		opts = append(opts, xmrobust.WithInjection(*injRate, sites...))
	}
	if *coverCol {
		opts = append(opts, xmrobust.WithCoverage())
	}
	// First SIGINT/SIGTERM cancels the campaign cooperatively: workers
	// finish the tests in hand, shards flush, and with -stream the
	// checkpoint is durable, so -resume replays the rest to a
	// byte-identical merged log. A second signal kills the process (stop
	// restores default handling).
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	opts = append(opts, xmrobust.WithContext(ctx))

	var o *xmrobust.Obs
	if *progress || *opsAddr != "" {
		o = xmrobust.NewObs()
		opts = append(opts, xmrobust.WithObs(o))
	}
	var ops *xmrobust.OpsServer
	if *opsAddr != "" {
		var err error
		ops, err = xmrobust.ServeOps(*opsAddr, o)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xmfuzz:", err)
			os.Exit(1)
		}
		defer ops.Close()
		fmt.Fprintf(os.Stderr, "xmfuzz: ops on http://%s/metrics\n", ops.Addr())
	}
	var stopProgress func()
	if *progress {
		stopProgress = progressLine(o)
	}
	if *stream != "" {
		opts = append(opts, xmrobust.WithCheckpoint(*stream), xmrobust.WithShards(*shards))
		if *resume {
			opts = append(opts, xmrobust.WithResume())
		}
		if *fresh {
			opts = append(opts, xmrobust.WithFreshMachines())
		}
		if *codec != "" {
			opts = append(opts, xmrobust.WithCodec(*codec))
		}
	} else if *codec != "" {
		fmt.Fprintln(os.Stderr, "xmfuzz: -codec requires -stream (shard files are what a codec writes)")
		os.Exit(2)
	}
	if *batch != 0 {
		opts = append(opts, xmrobust.WithBatchSize(*batch))
	}

	rep, err := xmrobust.Run(opts...)
	if stopProgress != nil {
		stopProgress()
	}
	if ctx.Err() != nil {
		stopSignals()
		drainOps(ops)
		fmt.Fprintln(os.Stderr, "xmfuzz: interrupted — campaign cancelled")
		if *stream != "" {
			fmt.Fprintf(os.Stderr, "xmfuzz: checkpoint written; continue with -stream %s -resume\n", *stream)
		}
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "xmfuzz:", err)
		os.Exit(1)
	}

	if *output != "" {
		if err := writeLog(rep, *output); err != nil {
			fmt.Fprintln(os.Stderr, "xmfuzz:", err)
			os.Exit(1)
		}
	}

	switch {
	case *csv:
		fmt.Print(rep.TableCSV())
	case *issues:
		fmt.Print(rep.IssuesText())
	default:
		fmt.Print(rep.Summary())
	}
	if *masking {
		study, err := rep.MaskingText()
		if err != nil {
			fmt.Fprintln(os.Stderr, "xmfuzz:", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(study)
	}
	if n := rep.HarnessErrors(); n > 0 {
		fmt.Fprintf(os.Stderr, "xmfuzz: %d tests failed in the harness\n", n)
		os.Exit(1)
	}
}

// drainOps shuts the -ops server down gracefully on the signal path:
// in-flight scrapes finish (bounded) instead of seeing a reset
// connection. Nil-safe, like the server's own methods.
func drainOps(ops *xmrobust.OpsServer) {
	sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	ops.Shutdown(sctx)
}

// progressLine renders the live -progress stderr line from the
// campaign's observability snapshot, twice a second. The returned stop
// function prints the final state and terminates the line.
func progressLine(o *xmrobust.Obs) func() {
	render := func() {
		s := o.Progress.Snapshot()
		if s.Total == 0 {
			return
		}
		eta := "--"
		if s.ETASec > 0 {
			eta = time.Duration(s.ETASec * float64(time.Second)).Truncate(time.Second).String()
		}
		fmt.Fprintf(os.Stderr, "\r%6d / %d tests  %6.0f t/s  ETA %-10s", s.Done, s.Total, s.TestsPerSec, eta)
	}
	done := make(chan struct{})
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		tick := time.NewTicker(500 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				render()
			}
		}
	}()
	return func() {
		close(done)
		<-stopped
		render()
		fmt.Fprintln(os.Stderr)
	}
}

// writeLog writes the merged raw campaign log to path.
func writeLog(rep *xmrobust.Report, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	n, err := rep.WriteLog(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		fmt.Fprintf(os.Stderr, "campaign log: %s (%d records)\n", path, n)
	}
	return err
}
