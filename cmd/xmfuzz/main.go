// Command xmfuzz runs the robustness testing campaign of the paper's case
// study: the data-type fault model applied to the XtratuM-like separation
// kernel on the EagleEye TSP testbed. It reproduces Table III, the CRASH
// tally, Fig. 8 and the §IV.C issue list.
//
// Usage:
//
//	xmfuzz [-patched] [-mafs N] [-workers N] [-stress] [-func NAME]
//	       [-csv] [-issues] [-progress]
package main

import (
	"flag"
	"fmt"
	"os"

	"xmrobust/internal/analysis"
	"xmrobust/internal/apispec"
	"xmrobust/internal/campaign"
	"xmrobust/internal/core"
	"xmrobust/internal/report"
	"xmrobust/internal/xm"
)

func main() {
	var (
		patched  = flag.Bool("patched", false, "test the patched kernel (post fault-removal)")
		mafs     = flag.Int("mafs", campaign.DefaultMAFs, "major frames per test")
		workers  = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		stress   = flag.Bool("stress", false, "pre-load the system before injection")
		fn       = flag.String("func", "", "restrict the campaign to one hypercall")
		csv      = flag.Bool("csv", false, "emit Table III as CSV")
		issues   = flag.Bool("issues", false, "emit only the issue list")
		progress = flag.Bool("progress", false, "print progress while running")
		phantom  = flag.Bool("phantom", false, "run the phantom-parameter extension campaign instead")
		masking  = flag.Bool("masking", false, "append the fault-masking study (paper Fig. 7)")
		output   = flag.String("o", "", "write the raw campaign log (JSON Lines) to this file")
	)
	flag.Parse()

	opts := campaign.Options{
		MAFs:    *mafs,
		Workers: *workers,
		Stress:  *stress,
	}
	if *patched {
		opts.Faults = xm.PatchedFaults()
	}
	if *fn != "" {
		header := apispec.Default()
		found := false
		for i := range header.Functions {
			tested := header.Functions[i].Name == *fn
			if tested {
				found = true
			}
			header.Functions[i].Tested = map[bool]string{true: "YES", false: "NO"}[tested]
		}
		if !found {
			fmt.Fprintf(os.Stderr, "xmfuzz: unknown hypercall %q\n", *fn)
			os.Exit(2)
		}
		opts.Header = header
	}
	if *progress {
		opts.Progress = func(done, total int) {
			if done%250 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\r%6d / %d tests", done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}

	if *phantom {
		prep := core.RunPhantomCampaign(opts)
		fmt.Printf("phantom-parameter extension: %d tests (%d parameter-less hypercalls x %d states)\n\n",
			len(prep.Results), len(prep.Results)/len(campaign.PhantomStates()), len(campaign.PhantomStates()))
		fmt.Print(analysis.Summary(prep.Issues))
		return
	}

	rep, err := core.RunCampaign(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xmfuzz:", err)
		os.Exit(1)
	}
	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xmfuzz:", err)
			os.Exit(1)
		}
		if err := campaign.WriteJSON(f, rep.Results); err != nil {
			fmt.Fprintln(os.Stderr, "xmfuzz:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "xmfuzz:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "campaign log: %s (%d records)\n", *output, len(rep.Results))
	}
	switch {
	case *csv:
		fmt.Print(report.TableIIICSV(rep))
	case *issues:
		fmt.Print(analysis.Summary(rep.Issues))
	default:
		fmt.Print(report.Full(rep))
	}
	if *masking {
		fmt.Println()
		fmt.Print(analysis.MaskingSummary(analysis.MaskingStudy(rep.Classified)))
	}
}
