// Command xmfuzz runs the robustness testing campaign of the paper's case
// study: the data-type fault model applied to the XtratuM-like separation
// kernel on the EagleEye TSP testbed. It reproduces Table III, the CRASH
// tally, Fig. 8 and the §IV.C issue list.
//
// By default the campaign runs eagerly in memory. With -stream DIR it runs
// on the streaming pooled engine instead: execution logs are sharded into
// JSON Lines files under DIR, a checkpoint tracks completed tests, and
// -resume continues an interrupted campaign from the last completed
// dataset — the final report is identical to an uninterrupted run's.
//
// xmfuzz exits 0 when the campaign executed cleanly (robustness findings
// are its product, not an error), 1 on campaign/harness errors, 2 on
// usage errors.
//
// The campaign's test plan is pluggable: -plan exhaustive (default, the
// paper's full Eq. 1 product), -plan pairwise (greedy 2-way covering
// array), -plan rand:N (seeded uniform sample without replacement, see
// -seed) or -plan boundary (invalid/boundary-value-dense subset). A
// checkpointed campaign records its plan fingerprint; -resume refuses a
// mismatched plan instead of mixing two campaigns into one log.
//
// Usage:
//
// With -plan feedback:N the campaign closes the loop on kernel edge
// coverage: boundary-strategy seeds first, then datasets bred from the
// coverage-deduplicated corpus by dictionary-aware mutators, with the
// engine feeding every result's coverage map back into the plan. Seeded
// feedback runs are byte-reproducible; -corpus FILE persists the corpus
// across campaigns; -cover-stats reports edge coverage for any plan.
//
//	xmfuzz [-patched] [-mafs N] [-workers N] [-stress] [-func NAME]
//	       [-plan STRATEGY] [-seed N] [-corpus FILE] [-cover-stats]
//	       [-csv] [-issues] [-progress]
//	       [-stream DIR] [-shards N] [-resume] [-fresh-machines]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"xmrobust/internal/analysis"
	"xmrobust/internal/apispec"
	"xmrobust/internal/campaign"
	"xmrobust/internal/core"
	"xmrobust/internal/report"
	"xmrobust/internal/xm"
)

func main() {
	var (
		patched  = flag.Bool("patched", false, "test the patched kernel (post fault-removal)")
		mafs     = flag.Int("mafs", campaign.DefaultMAFs, "major frames per test")
		workers  = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		stress   = flag.Bool("stress", false, "pre-load the system before injection")
		fn       = flag.String("func", "", "restrict the campaign to one hypercall")
		csv      = flag.Bool("csv", false, "emit Table III as CSV")
		issues   = flag.Bool("issues", false, "emit only the issue list")
		progress = flag.Bool("progress", false, "print progress while running")
		phantom  = flag.Bool("phantom", false, "run the phantom-parameter extension campaign instead")
		masking  = flag.Bool("masking", false, "append the fault-masking study (paper Fig. 7)")
		output   = flag.String("o", "", "write the raw campaign log (JSON Lines) to this file")
		stream   = flag.String("stream", "", "run the streaming engine, sharding the campaign log into this directory")
		shards   = flag.Int("shards", 0, "shard writer count for -stream (0 = workers)")
		resume   = flag.Bool("resume", false, "resume an interrupted -stream campaign from its checkpoint")
		fresh    = flag.Bool("fresh-machines", false, "disable machine pooling (one fresh simulator per test)")
		plan     = flag.String("plan", "exhaustive", "test plan: exhaustive, pairwise, rand:N, boundary, feedback:N")
		seed     = flag.Int64("seed", 0, "seed for randomised plans (rand:N, feedback:N)")
		corpus   = flag.String("corpus", "", "feedback-plan corpus file (JSON Lines): load parents, append admissions")
		coverCol = flag.Bool("cover-stats", false, "collect kernel edge coverage and report it (feedback plans always do)")
	)
	flag.Parse()

	opts := campaign.Options{
		MAFs:     *mafs,
		Workers:  *workers,
		Stress:   *stress,
		Plan:     *plan,
		Seed:     *seed,
		Corpus:   *corpus,
		Coverage: *coverCol,
	}
	if *patched {
		opts.Faults = xm.PatchedFaults()
	}
	if *fn != "" {
		header := apispec.Default()
		found := false
		for i := range header.Functions {
			tested := header.Functions[i].Name == *fn
			if tested {
				found = true
			}
			header.Functions[i].Tested = map[bool]string{true: "YES", false: "NO"}[tested]
		}
		if !found {
			fmt.Fprintf(os.Stderr, "xmfuzz: unknown hypercall %q\n", *fn)
			os.Exit(2)
		}
		opts.Header = header
	}
	if *progress {
		opts.Progress = func(done, total int) {
			if done%250 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\r%6d / %d tests", done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}

	if *resume && *stream == "" {
		fmt.Fprintln(os.Stderr, "xmfuzz: -resume requires -stream")
		os.Exit(2)
	}

	if *phantom {
		if *stream != "" {
			// The 50-test phantom extension runs eagerly; pretending to
			// shard it would leave the directory empty.
			fmt.Fprintln(os.Stderr, "xmfuzz: -phantom does not support -stream")
			os.Exit(2)
		}
		prep := core.RunPhantomCampaign(opts)
		fmt.Printf("phantom-parameter extension: %d tests (%d parameter-less hypercalls x %d states)\n\n",
			len(prep.Results), len(prep.Results)/len(campaign.PhantomStates()), len(campaign.PhantomStates()))
		fmt.Print(analysis.Summary(prep.Issues))
		exitOnHarnessErrors(prep.Results)
		return
	}

	if *stream != "" {
		if *masking {
			// The masking study needs every classified result in memory —
			// the eager pipeline's job.
			fmt.Fprintln(os.Stderr, "xmfuzz: -masking requires the eager engine (drop -stream)")
			os.Exit(2)
		}
		eo := campaign.EngineOptions{
			ShardDir:       *stream,
			Shards:         *shards,
			CheckpointPath: filepath.Join(*stream, "checkpoint.jsonl"),
			Resume:         *resume,
			FreshMachines:  *fresh,
		}
		srep, err := core.RunCampaignStream(opts, eo)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xmfuzz:", err)
			os.Exit(1)
		}
		if *output != "" {
			f, err := os.Create(*output)
			if err == nil {
				var n int
				if n, err = campaign.MergeShards(*stream, f); err == nil {
					err = f.Close()
					fmt.Fprintf(os.Stderr, "campaign log: %s (%d records)\n", *output, n)
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "xmfuzz:", err)
				os.Exit(1)
			}
		}
		switch {
		case *csv:
			fmt.Print(report.StreamTableIIICSV(srep))
		case *issues:
			fmt.Print(analysis.Summary(srep.Issues))
		default:
			fmt.Print(report.StreamSummary(srep))
		}
		if srep.HarnessErrors > 0 {
			fmt.Fprintf(os.Stderr, "xmfuzz: %d tests failed in the harness\n", srep.HarnessErrors)
			os.Exit(1)
		}
		return
	}

	rep, err := core.RunCampaign(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xmfuzz:", err)
		os.Exit(1)
	}
	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xmfuzz:", err)
			os.Exit(1)
		}
		if err := campaign.WriteJSON(f, rep.Results); err != nil {
			fmt.Fprintln(os.Stderr, "xmfuzz:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "xmfuzz:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "campaign log: %s (%d records)\n", *output, len(rep.Results))
	}
	switch {
	case *csv:
		fmt.Print(report.TableIIICSV(rep))
	case *issues:
		fmt.Print(analysis.Summary(rep.Issues))
	default:
		fmt.Print(report.Full(rep))
	}
	if *masking {
		fmt.Println()
		fmt.Print(analysis.MaskingSummary(analysis.MaskingStudy(rep.Classified)))
	}
	exitOnHarnessErrors(rep.Results)
}

// exitOnHarnessErrors exits 1 when any test failed in the harness rather
// than the kernel, so CI and scripts can gate on campaign health.
// Robustness findings do NOT fail the run — they are the product.
func exitOnHarnessErrors(results []campaign.Result) {
	errs := 0
	for _, r := range results {
		if r.RunErr != "" {
			errs++
		}
	}
	if errs > 0 {
		fmt.Fprintf(os.Stderr, "xmfuzz: %d tests failed in the harness\n", errs)
		os.Exit(1)
	}
}
