// Command xmworker serves one execution target over TCP for distributed
// campaigns: a coordinator running with -target remote:<addr>[,<addr>...]
// fans its leases across a fleet of xmworker processes, and the merged
// campaign log stays byte-identical to the same campaign executed
// in-process (duplicated executions from re-issued leases dedupe by seq).
//
// Usage:
//
//	xmworker [-listen ADDR] [-target SPEC] [-workers N] [-seed N]
//	         [-fresh-machines] [-legacy-pool]
//	         [-inject-rate R] [-inject-sites LIST]
//	         [-exit-after N] [-ops ADDR]
//
// The worker prints "xmworker: listening on <addr> target=<spec>" once
// the listener is up — with -listen :0 that line is how a launcher
// learns the bound port. -exit-after makes the process exit without
// responding once N tests have executed: a deterministic mid-lease
// worker death, used by the lease-reclaim smoke test.
//
// -ops serves the worker's observability endpoints (/metrics, /healthz,
// /progress, /debug/pprof) on a second address. On SIGINT or SIGTERM
// the worker drains instead of dying: it stops accepting, lets in-flight
// leases finish and answer, then exits 0 — coordinators lose the
// connection only between leases and re-issue nothing.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"xmrobust/internal/inject"
	"xmrobust/internal/obs"
	"xmrobust/internal/remote"
	"xmrobust/internal/target"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:0", "address to listen on (:0 picks a free port)")
		tgt       = flag.String("target", "", "execution target to serve: sim (default), phantom, diff:a,b, inject:base")
		workers   = flag.Int("workers", 1, "concurrent lease executions")
		seed      = flag.Int64("seed", 0, "seed anchoring inject:* schedules (match the coordinator's -seed)")
		fresh     = flag.Bool("fresh-machines", false, "disable machine pooling (one fresh simulator per test)")
		legacy    = flag.Bool("legacy-pool", false, "use the reset-and-verify pool instead of copy-on-write snapshots")
		injRate   = flag.Float64("inject-rate", 1, "inject:* targets: fraction of tests carrying an SEU, in (0,1]")
		injSites  = flag.String("inject-sites", "", "inject:* targets: comma-separated flip sites (default all)")
		exitAfter = flag.Int("exit-after", 0, "exit without responding after N tests (lease-reclaim testing)")
		quiet     = flag.Bool("quiet", false, "suppress per-connection logging")
		opsAddr   = flag.String("ops", "", "serve /metrics, /healthz, /progress and /debug/pprof on this address")
	)
	flag.Parse()

	if strings.HasPrefix(*tgt, remote.Name+":") || *tgt == remote.Name {
		fmt.Fprintln(os.Stderr, "xmworker: refusing to serve a remote target (a worker fleet must bottom out on local execution)")
		os.Exit(2)
	}
	params := inject.Params{Rate: *injRate, Seed: *seed}
	if *injSites != "" {
		for _, s := range strings.Split(*injSites, ",") {
			if s = strings.TrimSpace(s); s != "" {
				params.Sites = append(params.Sites, s)
			}
		}
	}
	var (
		o   *obs.Obs
		ops *obs.OpsServer
	)
	if *opsAddr != "" {
		o = obs.New()
		var err error
		ops, err = obs.ListenAndServe(*opsAddr, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xmworker: %v\n", err)
			os.Exit(1)
		}
		defer ops.Close()
		fmt.Printf("xmworker: ops on http://%s/metrics\n", ops.Addr())
	}
	backend, err := target.New(*tgt, target.Config{
		FreshMachines: *fresh,
		LegacyPool:    *legacy,
		Inject:        params,
		Obs:           o,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "xmworker: %v\n", err)
		os.Exit(2)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xmworker: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("xmworker: listening on %s target=%s\n", ln.Addr(), backend.Name())

	srv := &remote.Server{
		Target:    backend,
		Workers:   *workers,
		ExitAfter: *exitAfter,
		Obs:       o,
		OnExit: func() {
			fmt.Printf("xmworker: exit-after %d tests reached, dying mid-lease\n", *exitAfter)
			os.Exit(0)
		},
	}
	if !*quiet {
		srv.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "xmworker: "+format+"\n", args...)
		}
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		if err != nil {
			fmt.Fprintf(os.Stderr, "xmworker: %v\n", err)
			os.Exit(1)
		}
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "xmworker: %v — draining in-flight leases\n", sig)
		srv.Shutdown()
		// Drain the ops server too: a scrape caught mid-response finishes
		// instead of seeing a reset connection (nil-safe when -ops is off).
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		ops.Shutdown(sctx)
		cancel()
		fmt.Fprintln(os.Stderr, "xmworker: drained, exiting")
	}
}
