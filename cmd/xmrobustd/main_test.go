package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"testing"
	"time"

	"xmrobust/pkg/xmrobust"
)

// daemon is a running xmrobustd process plus its parsed base URL.
type daemon struct {
	cmd  *exec.Cmd
	base string
	data string
}

// startDaemon builds the binary, launches it on a free port with a
// fresh data directory, and parses the readiness line for the address.
func startDaemon(t *testing.T) *daemon {
	t.Helper()
	dir := t.TempDir()
	bin := filepath.Join(dir, "xmrobustd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building xmrobustd: %v", err)
	}

	data := filepath.Join(dir, "data")
	cmd := exec.Command(bin, "-listen", "127.0.0.1:0", "-data", data, "-quiet")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })

	// The first stdout line is the launcher-facing readiness line:
	// "xmrobustd: listening on ADDR data=DIR".
	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		t.Fatalf("daemon exited before its readiness line: %v", err)
	}
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[1] != "listening" {
		t.Fatalf("unexpected readiness line %q", line)
	}
	return &daemon{cmd: cmd, base: "http://" + fields[3], data: data}
}

type status struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Total    int    `json:"total"`
	Executed int    `json:"executed"`
	Dir      string `json:"dir"`
	Error    string `json:"error"`
}

func terminal(state string) bool {
	return state == "done" || state == "canceled" || state == "failed"
}

func (d *daemon) submit(t *testing.T, body string) status {
	t.Helper()
	resp, err := http.Post(d.base+"/v1/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /v1/campaigns: status %d: %s", resp.StatusCode, b)
	}
	var st status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func (d *daemon) status(t *testing.T, id string) status {
	t.Helper()
	resp, err := http.Get(d.base + "/v1/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func (d *daemon) waitFor(t *testing.T, id string, cond func(status) bool) status {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		st := d.status(t, id)
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s stuck in state %s (%d/%d)", id, st.State, st.Executed, st.Total)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// streamRecords subscribes to the campaign's SSE feed and reassembles
// the record events, sorted by seq, into campaign-log bytes.
func (d *daemon) streamRecords(t *testing.T, id string) []byte {
	t.Helper()
	resp, err := http.Get(d.base + "/v1/campaigns/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	records := map[int][]byte{}
	br := bufio.NewReaderSize(resp.Body, 1<<20)
	kind, ended := "", false
	for !ended {
		line, err := br.ReadString('\n')
		if err != nil {
			break
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			kind = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch kind {
			case "record":
				var hdr struct {
					Seq int `json:"seq"`
				}
				if err := json.Unmarshal([]byte(data), &hdr); err != nil {
					t.Fatalf("bad record event: %v\n%s", err, data)
				}
				records[hdr.Seq] = []byte(data)
			case "end":
				ended = true
			}
		}
	}
	if !ended {
		t.Fatal("SSE stream closed without an end event")
	}
	seqs := make([]int, 0, len(records))
	for seq := range records {
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	var buf bytes.Buffer
	for _, seq := range seqs {
		buf.Write(records[seq])
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

func (d *daemon) log(t *testing.T, id string) []byte {
	t.Helper()
	resp, err := http.Get(d.base + "/v1/campaigns/" + id + "/log")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// libraryLog runs the same campaign through pkg/xmrobust into its own
// checkpoint directory and returns the merged log.
func libraryLog(t *testing.T, opts ...xmrobust.Option) []byte {
	t.Helper()
	dir := t.TempDir()
	if _, err := xmrobust.Run(append(opts, xmrobust.WithCheckpoint(dir))...); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := xmrobust.MergeLog(dir, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDaemonSmoke is the end-to-end acceptance check: a real xmrobustd
// process, a fixed-seed inject:sim campaign submitted over HTTP whose
// SSE stream and merged log are byte-identical to a pkg/xmrobust run,
// a second campaign cancelled mid-run whose checkpoint the library
// resumes to the uninterrupted bytes, and a clean SIGTERM drain.
func TestDaemonSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives the daemon binary")
	}
	d := startDaemon(t)

	// Fixed-seed campaign over HTTP == library run, byte for byte.
	st := d.submit(t, `{"plan":"rand:400","target":"inject:sim","seed":3,"workers":2,"codec":"raw","inject_rate":0.5}`)
	if st.Total != 400 {
		t.Fatalf("campaign total %d, want 400", st.Total)
	}
	stream := d.streamRecords(t, st.ID)
	final := d.waitFor(t, st.ID, func(s status) bool { return terminal(s.State) })
	if final.State != "done" {
		t.Fatalf("campaign ended %s (%s)", final.State, final.Error)
	}
	httpLog := d.log(t, st.ID)
	if !bytes.Equal(stream, httpLog) {
		t.Fatal("SSE record stream differs from the merged log")
	}
	ref := libraryLog(t,
		xmrobust.WithPlan("rand:400"), xmrobust.WithTarget("inject:sim"),
		xmrobust.WithSeed(3), xmrobust.WithWorkers(2),
		xmrobust.WithCodec("raw"), xmrobust.WithInjection(0.5))
	if !bytes.Equal(httpLog, ref) {
		t.Fatalf("daemon log (%d bytes) differs from the library run (%d bytes)",
			len(httpLog), len(ref))
	}

	// DELETE mid-run leaves a checkpoint the library resumes to the
	// same bytes as an uninterrupted run.
	st2 := d.submit(t, `{"plan":"rand:4000","target":"sim","seed":11,"workers":2}`)
	d.waitFor(t, st2.ID, func(s status) bool { return s.Executed >= 20 })
	req, _ := http.NewRequest(http.MethodDelete, d.base+"/v1/campaigns/"+st2.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}
	cancelled := d.waitFor(t, st2.ID, func(s status) bool { return terminal(s.State) })
	if cancelled.State != "canceled" {
		t.Fatalf("cancelled campaign settled as %s (%s)", cancelled.State, cancelled.Error)
	}
	if cancelled.Executed >= cancelled.Total {
		t.Fatal("campaign finished before the cancel landed; nothing was resumed")
	}
	resumeOpts := []xmrobust.Option{
		xmrobust.WithPlan("rand:4000"), xmrobust.WithTarget("sim"),
		xmrobust.WithSeed(11), xmrobust.WithWorkers(2),
	}
	if _, err := xmrobust.Run(append(resumeOpts,
		xmrobust.WithCheckpoint(cancelled.Dir), xmrobust.WithResume())...); err != nil {
		t.Fatalf("resuming the daemon's checkpoint: %v", err)
	}
	var resumed bytes.Buffer
	if _, err := xmrobust.MergeLog(cancelled.Dir, &resumed); err != nil {
		t.Fatal(err)
	}
	ref2 := libraryLog(t, resumeOpts...)
	if !bytes.Equal(resumed.Bytes(), ref2) {
		t.Fatal("cancelled-then-resumed log differs from the uninterrupted run")
	}

	// SIGTERM drains: the process exits 0 on its own.
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not exit within 60s of SIGTERM")
	}
}
