// Command xmrobustd is the campaign service: a long-running daemon that
// accepts robustness-campaign submissions over HTTP, executes them on a
// bounded executor over the shared machine pool, and streams per-test
// records live over Server-Sent Events.
//
// API (JSON everywhere; see internal/serve):
//
//	POST   /v1/campaigns             submit {plan, target, seed, codec, ...}
//	GET    /v1/campaigns             list campaigns
//	GET    /v1/campaigns/{id}        one campaign's status
//	DELETE /v1/campaigns/{id}        cancel (queued or running)
//	GET    /v1/campaigns/{id}/events live SSE stream (status/record/progress/end)
//	GET    /v1/campaigns/{id}/log    merged JSON Lines campaign log
//
// The ops surface (/metrics, /healthz, /progress, /debug/pprof) is
// mounted on the same address. Campaign directories (shards +
// checkpoint) live under -data, one per campaign; a campaign cancelled
// mid-run leaves a checkpoint there, and `xmfuzz -stream <dir> -resume`
// replays the remainder to a byte-identical merged log.
//
// On SIGINT or SIGTERM the daemon drains: submissions get 503, queued
// and running campaigns are cancelled (flushing shards and checkpoint),
// SSE subscribers receive the final status and end events, and the
// HTTP server finishes in-flight requests before the process exits 0.
//
// Usage:
//
//	xmrobustd [-listen ADDR] [-data DIR] [-max-active N] [-max-per-client N]
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"xmrobust/internal/obs"
	"xmrobust/internal/serve"

	// Register the remote backend so submissions can target xmworker
	// fleets ("remote:<addr>,...") like any CLI campaign.
	_ "xmrobust/internal/remote"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:8433", "address to serve the campaign API on (:0 picks a free port)")
		dataDir   = flag.String("data", "", "campaign data directory (shards + checkpoints; required)")
		maxActive = flag.Int("max-active", 1, "campaigns executing concurrently")
		maxClient = flag.Int("max-per-client", 4, "live (queued+running) campaigns per client before 429")
		quiet     = flag.Bool("quiet", false, "suppress per-campaign logging")
	)
	flag.Parse()

	if *dataDir == "" {
		fmt.Fprintln(os.Stderr, "xmrobustd: -data DIR is required")
		os.Exit(2)
	}
	cfg := serve.Config{
		DataDir:      *dataDir,
		MaxActive:    *maxActive,
		MaxPerClient: *maxClient,
		Obs:          obs.New(),
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "xmrobustd: "+format+"\n", args...)
		}
	}
	svc, err := serve.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xmrobustd: %v\n", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xmrobustd: %v\n", err)
		os.Exit(1)
	}
	srv := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: obs.ReadHeaderTimeout,
		IdleTimeout:       obs.IdleTimeout,
	}
	// The launcher-facing readiness line (with -listen :0 it is how a
	// harness learns the bound port), mirroring xmworker.
	fmt.Printf("xmrobustd: listening on %s data=%s\n", ln.Addr(), *dataDir)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "xmrobustd: %v\n", err)
			os.Exit(1)
		}
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "xmrobustd: %v — draining\n", sig)
		// Campaigns first (they cancel, flush and checkpoint, and their
		// SSE streams end), then the HTTP server's in-flight requests.
		dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := svc.Shutdown(dctx); err != nil {
			fmt.Fprintf(os.Stderr, "xmrobustd: drain: %v\n", err)
		}
		if err := srv.Shutdown(dctx); err != nil {
			fmt.Fprintf(os.Stderr, "xmrobustd: shutdown: %v\n", err)
		}
		cancel()
		fmt.Fprintln(os.Stderr, "xmrobustd: drained, exiting")
	}
}
