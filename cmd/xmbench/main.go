// Xmbench measures the campaign engine's steady-state throughput on the
// sim backend and the per-record codec cost, and records the measurement
// as a BENCH JSON file — the perf-trajectory format the repository
// commits (BENCH_0.json is the pre-snapshot-pool baseline) and CI gates.
//
// The protocol: one shared sim target (warm machine pool and parked
// testbed kernels, exactly a long campaign's steady state) executes the
// same fixed-seed plan for -reps repetitions through the streaming
// engine with sharded logs; the first repetition is warm-up and is not
// timed. Encode cost is measured separately by serialising one
// representative executed record in a tight loop per codec.
//
//	go run ./cmd/xmbench -o BENCH_1.json
//	go run ./cmd/xmbench -baseline BENCH_1.json -gate 15
//
// With -baseline, the run compares its tests/sec and allocs/test against
// the baseline file and exits non-zero when either regresses past the
// gate percentage — allocs/test is machine-stable, tests/sec assumes the
// baseline was measured on comparable hardware. The comparison refuses a
// baseline measured at a different workers/batch/codec configuration:
// those knobs change what is being measured, not how fast it is.
//
// With -sweep, one measurement per workers count runs instead (plus a
// loopback remote: point over -remote-workers in-process xmworker-style
// servers, when non-zero), and the output is the schema-2 sweep file
// (BENCH_2.json) recording the multi-worker scaling trajectory:
//
//	go run ./cmd/xmbench -sweep 1,2,4,8 -o BENCH_2.json -min-scale 3
//
// -min-scale gates the sweep: aggregate tests/sec at the largest workers
// count must be at least min(min-scale, 0.6·min(workers, NumCPU)) times
// the workers=1 point. The CPU clamp keeps the gate honest on small CI
// machines — a 1-CPU container cannot exhibit parallel speedup, and
// pretending otherwise would make the gate a hardware lottery.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"xmrobust/internal/campaign"
	"xmrobust/internal/obs"
	"xmrobust/internal/remote"
	"xmrobust/internal/target"
)

// Bench is one recorded measurement — the schema of BENCH_*.json and of
// each point in a schema-2 sweep file.
type Bench struct {
	Schema        int     `json:"schema,omitempty"`
	Plan          string  `json:"plan,omitempty"`
	Seed          int64   `json:"seed,omitempty"`
	Reps          int     `json:"reps,omitempty"`
	Batch         int     `json:"batch"`
	Codec         string  `json:"codec,omitempty"`
	Workers       int     `json:"workers"`
	Target        string  `json:"target,omitempty"`
	Tests         int     `json:"tests"`
	TestsPerSec   float64 `json:"tests_per_sec"`
	AllocsPerTest float64 `json:"allocs_per_test"`
	BytesPerTest  float64 `json:"bytes_per_test"`
	EncodeNsJSON  float64 `json:"encode_ns_json,omitempty"`
	EncodeNsRaw   float64 `json:"encode_ns_raw,omitempty"`
	Note          string  `json:"note,omitempty"`
}

// Sweep is the schema-2 multi-worker scaling record (BENCH_2.json): the
// shared protocol knobs, the host's parallelism, and one point per
// configuration measured.
type Sweep struct {
	Schema int     `json:"schema"`
	Plan   string  `json:"plan"`
	Seed   int64   `json:"seed"`
	Reps   int     `json:"reps"`
	Batch  int     `json:"batch"`
	Codec  string  `json:"codec"`
	CPUs   int     `json:"cpus"`
	Points []Bench `json:"points"`
	Note   string  `json:"note,omitempty"`
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "xmbench:", err)
	os.Exit(1)
}

func main() {
	var (
		n         = flag.Int("n", 2000, "tests per repetition (rand:N plan)")
		reps      = flag.Int("reps", 20, "timed repetitions (one extra warm-up rep runs untimed)")
		batch     = flag.Int("batch", 16, "tests leased per worker slot (0 = unbatched)")
		codec     = flag.String("codec", "raw", "shard record codec")
		workers   = flag.Int("workers", 1, "engine workers (1 = stable per-test numbers)")
		seed      = flag.Int64("seed", 1, "plan seed")
		out       = flag.String("o", "", "write the measurement JSON to this file (default stdout)")
		baseline  = flag.String("baseline", "", "compare against this BENCH_*.json and gate regressions")
		gate      = flag.Float64("gate", 15, "regression gate in percent for -baseline")
		note      = flag.String("note", "", "free-form note recorded in the measurement")
		sweepList = flag.String("sweep", "", "comma-separated workers counts: measure each and emit a schema-2 sweep file")
		remoteN   = flag.Int("remote-workers", 2, "loopback remote servers for the sweep's remote: point (0 = skip)")
		minScale  = flag.Float64("min-scale", 0, "sweep gate: required tests/sec ratio of the largest workers point over workers=1 (CPU-clamped, 0 = off)")
		opsAddr   = flag.String("ops", "", "serve /metrics, /healthz, /progress and /debug/pprof on this address while measuring (perturbs the measurement)")
	)
	flag.Parse()

	var o *obs.Obs
	if *opsAddr != "" {
		o = obs.New()
		srv, err := obs.ListenAndServe(*opsAddr, o)
		if err != nil {
			fail(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "xmbench: ops on http://%s/metrics\n", srv.Addr())
	}

	if *sweepList != "" {
		sweep(*n, *seed, *reps, *batch, *codec, *sweepList, *remoteN, *minScale, *out, *note, o)
		return
	}

	b, err := measure(point{
		plan: fmt.Sprintf("rand:%d", *n), seed: *seed, reps: *reps,
		batch: *batch, codec: *codec, workers: *workers, obs: o,
	})
	if err != nil {
		fail(err)
	}
	b.Schema = 1
	b.Note = *note
	b.EncodeNsJSON, b.EncodeNsRaw = encodeCost()

	fmt.Fprintf(os.Stderr,
		"xmbench: %d tests — %.0f tests/sec, %.0f allocs/test, %.0f bytes/test, encode %.0fns json / %.0fns raw\n",
		b.Tests, b.TestsPerSec, b.AllocsPerTest, b.BytesPerTest, b.EncodeNsJSON, b.EncodeNsRaw)

	emit(b, *out)
	if *baseline != "" {
		if err := compare(b, *baseline, *gate); err != nil {
			fail(err)
		}
	}
}

// point is one measurement configuration.
type point struct {
	plan    string
	seed    int64
	reps    int
	batch   int
	codec   string
	workers int
	// targetSpec selects a non-default execution backend ("" = one
	// shared sim instance, the steady-state protocol).
	targetSpec string
	// obs, when non-nil, instruments the measured engine (the -ops
	// server's data source; nil keeps the measurement unperturbed).
	obs *obs.Obs
}

// measure runs the fixed-seed plan reps times through the streaming
// engine (one untimed warm-up first) and returns the timing.
func measure(p point) (Bench, error) {
	b := Bench{
		Plan: p.plan, Seed: p.seed, Reps: p.reps, Batch: p.batch,
		Codec: p.codec, Workers: p.workers, Target: p.targetSpec,
	}
	opts := campaign.Options{Plan: p.plan, Seed: p.seed, Workers: p.workers}
	if p.targetSpec != "" {
		opts.Target = p.targetSpec
	}
	plan, ropts, err := campaign.BuildPlan(opts)
	if err != nil {
		return b, err
	}
	dir, err := os.MkdirTemp("", "xmbench")
	if err != nil {
		return b, err
	}
	defer os.RemoveAll(dir)
	eo := campaign.EngineOptions{
		Options:   ropts,
		BatchSize: p.batch,
		Codec:     p.codec,
		ShardDir:  dir,
		Obs:       p.obs,
	}
	if p.targetSpec == "" {
		// One shared target across repetitions: the warm pool and parked
		// kernels make every timed rep a steady-state sample. Remote
		// points skip this — their steady state lives in the worker
		// servers, which persist across repetitions anyway.
		eo.TargetInstance = target.NewSim(target.Config{})
	}

	run := func() error { _, err := campaign.StreamPlan(plan, eo, nil); return err }
	if err := run(); err != nil { // warm-up, untimed
		return b, err
	}
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for r := 0; r < p.reps; r++ {
		if err := run(); err != nil {
			return b, err
		}
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&ms1)
	b.Tests = plan.Len() * p.reps
	b.TestsPerSec = float64(b.Tests) / wall.Seconds()
	b.AllocsPerTest = float64(ms1.Mallocs-ms0.Mallocs) / float64(b.Tests)
	b.BytesPerTest = float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(b.Tests)
	return b, nil
}

// sweep measures one point per workers count, plus a loopback remote:
// point, and emits the schema-2 scaling file.
func sweep(n int, seed int64, reps, batch int, codec, list string, remoteN int, minScale float64, out, note string, o *obs.Obs) {
	var counts []int
	for _, f := range strings.Split(list, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w < 1 {
			fail(fmt.Errorf("-sweep: bad workers count %q", f))
		}
		counts = append(counts, w)
	}
	s := Sweep{
		Schema: 2, Plan: fmt.Sprintf("rand:%d", n), Seed: seed,
		Reps: reps, Batch: batch, Codec: codec,
		CPUs: runtime.NumCPU(), Note: note,
	}
	for _, w := range counts {
		b, err := measure(point{plan: s.Plan, seed: seed, reps: reps, batch: batch, codec: codec, workers: w, obs: o})
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "xmbench: workers=%d — %.0f tests/sec, %.0f allocs/test\n",
			w, b.TestsPerSec, b.AllocsPerTest)
		s.Points = append(s.Points, b)
	}
	if remoteN > 0 {
		b, err := remotePoint(s.Plan, seed, reps, batch, codec, remoteN)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "xmbench: %s workers=%d — %.0f tests/sec (wire round-trip included)\n",
			b.Target, b.Workers, b.TestsPerSec)
		s.Points = append(s.Points, b)
	}

	buf, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		fail(err)
	}
	buf = append(buf, '\n')
	if out == "" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(out, buf, 0o644); err != nil {
		fail(err)
	}

	if minScale > 0 {
		if err := gateScale(s, minScale); err != nil {
			fail(err)
		}
	}
}

// remotePoint measures the sweep's remote: leg — remoteN in-process
// worker servers on loopback TCP, each wrapping its own sim target, the
// engine fanning leases out over the remote backend. The point records
// a stable target label, not the ephemeral ports.
func remotePoint(plan string, seed int64, reps, batch int, codec string, remoteN int) (Bench, error) {
	var addrs []string
	for i := 0; i < remoteN; i++ {
		srv := &remote.Server{Target: target.NewSim(target.Config{}), Workers: 1}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return Bench{}, err
		}
		defer srv.Close()
		addrs = append(addrs, addr)
	}
	b, err := measure(point{
		plan: plan, seed: seed, reps: reps, batch: batch, codec: codec,
		workers: remoteN, targetSpec: "remote:" + strings.Join(addrs, ","),
	})
	b.Target = fmt.Sprintf("remote:loopback×%d", remoteN)
	return b, err
}

// gateScale fails the sweep when the largest workers point does not beat
// workers=1 by the required ratio. The requirement is clamped to
// 0.6·min(workers, NumCPU): a host with fewer cores than workers
// cannot parallelise past its cores, and the 0.6 headroom absorbs
// coordination overhead. On a single-CPU host the clamp degrades the
// gate to "multi-worker must not collapse" (≥0.6×), which is the
// strongest honest statement such a machine can make.
func gateScale(s Sweep, minScale float64) error {
	var base, top *Bench
	for i := range s.Points {
		p := &s.Points[i]
		if p.Target != "" {
			continue // the remote point measures the wire, not scaling
		}
		if p.Workers == 1 {
			base = p
		}
		if top == nil || p.Workers > top.Workers {
			top = p
		}
	}
	if base == nil || top == nil || top.Workers == 1 {
		return fmt.Errorf("-min-scale needs a workers=1 point and a workers>1 point in the sweep")
	}
	required := minScale
	if clamp := 0.6 * float64(min(top.Workers, s.CPUs)); clamp < required {
		required = clamp
	}
	scale := top.TestsPerSec / base.TestsPerSec
	fmt.Fprintf(os.Stderr, "xmbench: scaling ×%.2f at workers=%d (vs workers=1), required ×%.2f on %d CPUs\n",
		scale, top.Workers, required, s.CPUs)
	if scale < required {
		return fmt.Errorf("scaling ×%.2f at workers=%d below the required ×%.2f", scale, top.Workers, required)
	}
	return nil
}

// emit writes one measurement to the output file (or stdout).
func emit(b Bench, out string) {
	buf, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		fail(err)
	}
	buf = append(buf, '\n')
	if out == "" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(out, buf, 0o644); err != nil {
		fail(err)
	}
}

// encodeCost times one representative record through both codecs.
func encodeCost() (jsonNs, rawNs float64) {
	var res campaign.Result
	// A single executed test gives a record with realistic field content
	// (resolved dataset values, return codes, kernel and partition state).
	plan, ropts, err := campaign.BuildPlan(campaign.Options{Plan: "rand:1", Seed: 1})
	if err != nil {
		fail(err)
	}
	if _, err := campaign.StreamPlan(plan, campaign.EngineOptions{Options: ropts},
		func(pos int, r campaign.Result) { res = r }); err != nil {
		fail(err)
	}
	rec := campaign.ToRecord(0, res)
	time1 := func(name string) float64 {
		c, err := campaign.NewCodec(name)
		if err != nil {
			fail(err)
		}
		const iters = 100000
		buf := make([]byte, 0, 4096)
		start := time.Now()
		for i := 0; i < iters; i++ {
			buf = buf[:0]
			if buf, err = c.AppendEncode(buf, &rec); err != nil {
				fail(err)
			}
		}
		return float64(time.Since(start).Nanoseconds()) / iters
	}
	return time1("json"), time1("raw")
}

// compare gates the measurement against a committed baseline: tests/sec
// may not drop, and allocs/test may not rise, past the gate percentage.
// Improvements always pass. A baseline measured at a different
// workers/batch/codec configuration is refused outright — the knobs
// change what is measured, and a silent apples-to-oranges comparison
// would let a real regression hide behind a configuration change.
func compare(cur Bench, path string, gatePct float64) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Bench
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if base.Workers != cur.Workers || base.Batch != cur.Batch || base.Codec != cur.Codec {
		return fmt.Errorf(
			"%s was measured at workers=%d batch=%d codec=%s, this run at workers=%d batch=%d codec=%s — rerun with matching flags (or remeasure the baseline)",
			path, base.Workers, base.Batch, base.Codec, cur.Workers, cur.Batch, cur.Codec)
	}
	speed := 100 * (cur.TestsPerSec - base.TestsPerSec) / base.TestsPerSec
	allocs := 100 * (cur.AllocsPerTest - base.AllocsPerTest) / base.AllocsPerTest
	fmt.Fprintf(os.Stderr, "xmbench: vs %s: tests/sec %+.1f%% (%.0f -> %.0f), allocs/test %+.1f%% (%.1f -> %.1f), gate ±%.0f%%\n",
		path, speed, base.TestsPerSec, cur.TestsPerSec, allocs, base.AllocsPerTest, cur.AllocsPerTest, gatePct)
	if speed < -gatePct {
		return fmt.Errorf("throughput regressed %.1f%% past the %.0f%% gate", -speed, gatePct)
	}
	if allocs > gatePct {
		return fmt.Errorf("allocations regressed %.1f%% past the %.0f%% gate", allocs, gatePct)
	}
	return nil
}
