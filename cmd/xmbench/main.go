// Xmbench measures the campaign engine's steady-state throughput on the
// sim backend and the per-record codec cost, and records the measurement
// as a BENCH JSON file — the perf-trajectory format the repository
// commits (BENCH_0.json is the pre-snapshot-pool baseline) and CI gates.
//
// The protocol: one shared sim target (warm machine pool and parked
// testbed kernels, exactly a long campaign's steady state) executes the
// same fixed-seed plan for -reps repetitions through the streaming
// engine with sharded logs; the first repetition is warm-up and is not
// timed. Encode cost is measured separately by serialising one
// representative executed record in a tight loop per codec.
//
//	go run ./cmd/xmbench -o BENCH_1.json
//	go run ./cmd/xmbench -baseline BENCH_1.json -gate 15
//
// With -baseline, the run compares its tests/sec and allocs/test against
// the baseline file and exits non-zero when either regresses past the
// gate percentage — allocs/test is machine-stable, tests/sec assumes the
// baseline was measured on comparable hardware.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"xmrobust/internal/campaign"
	"xmrobust/internal/target"
)

// Bench is one recorded measurement — the schema of BENCH_*.json.
type Bench struct {
	Schema        int     `json:"schema"`
	Plan          string  `json:"plan"`
	Seed          int64   `json:"seed"`
	Reps          int     `json:"reps"`
	Batch         int     `json:"batch"`
	Codec         string  `json:"codec"`
	Workers       int     `json:"workers"`
	Tests         int     `json:"tests"`
	TestsPerSec   float64 `json:"tests_per_sec"`
	AllocsPerTest float64 `json:"allocs_per_test"`
	BytesPerTest  float64 `json:"bytes_per_test"`
	EncodeNsJSON  float64 `json:"encode_ns_json,omitempty"`
	EncodeNsRaw   float64 `json:"encode_ns_raw,omitempty"`
	Note          string  `json:"note,omitempty"`
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "xmbench:", err)
	os.Exit(1)
}

func main() {
	var (
		n        = flag.Int("n", 2000, "tests per repetition (rand:N plan)")
		reps     = flag.Int("reps", 20, "timed repetitions (one extra warm-up rep runs untimed)")
		batch    = flag.Int("batch", 16, "tests leased per worker slot (0 = unbatched)")
		codec    = flag.String("codec", "raw", "shard record codec")
		workers  = flag.Int("workers", 1, "engine workers (1 = stable per-test numbers)")
		seed     = flag.Int64("seed", 1, "plan seed")
		out      = flag.String("o", "", "write the measurement JSON to this file (default stdout)")
		baseline = flag.String("baseline", "", "compare against this BENCH_*.json and gate regressions")
		gate     = flag.Float64("gate", 15, "regression gate in percent for -baseline")
		note     = flag.String("note", "", "free-form note recorded in the measurement")
	)
	flag.Parse()

	b := Bench{
		Schema: 1, Plan: fmt.Sprintf("rand:%d", *n), Seed: *seed,
		Reps: *reps, Batch: *batch, Codec: *codec, Workers: *workers,
		Note: *note,
	}
	opts := campaign.Options{Plan: b.Plan, Seed: *seed, Workers: *workers}
	plan, ropts, err := campaign.BuildPlan(opts)
	if err != nil {
		fail(err)
	}
	dir, err := os.MkdirTemp("", "xmbench")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(dir)
	eo := campaign.EngineOptions{
		Options:   ropts,
		BatchSize: *batch,
		Codec:     *codec,
		ShardDir:  dir,
		// One shared target across repetitions: the warm pool and parked
		// kernels make every timed rep a steady-state sample.
		TargetInstance: target.NewSim(target.Config{}),
	}

	run := func() error { _, err := campaign.StreamPlan(plan, eo, nil); return err }
	if err := run(); err != nil { // warm-up, untimed
		fail(err)
	}
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for r := 0; r < *reps; r++ {
		if err := run(); err != nil {
			fail(err)
		}
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&ms1)
	b.Tests = plan.Len() * *reps
	b.TestsPerSec = float64(b.Tests) / wall.Seconds()
	b.AllocsPerTest = float64(ms1.Mallocs-ms0.Mallocs) / float64(b.Tests)
	b.BytesPerTest = float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(b.Tests)
	b.EncodeNsJSON, b.EncodeNsRaw = encodeCost()

	fmt.Fprintf(os.Stderr,
		"xmbench: %d tests in %v — %.0f tests/sec, %.0f allocs/test, %.0f bytes/test, encode %.0fns json / %.0fns raw\n",
		b.Tests, wall.Round(time.Millisecond), b.TestsPerSec, b.AllocsPerTest, b.BytesPerTest,
		b.EncodeNsJSON, b.EncodeNsRaw)

	buf, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		fail(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fail(err)
	}

	if *baseline != "" {
		if err := compare(b, *baseline, *gate); err != nil {
			fail(err)
		}
	}
}

// encodeCost times one representative record through both codecs.
func encodeCost() (jsonNs, rawNs float64) {
	var res campaign.Result
	// A single executed test gives a record with realistic field content
	// (resolved dataset values, return codes, kernel and partition state).
	plan, ropts, err := campaign.BuildPlan(campaign.Options{Plan: "rand:1", Seed: 1})
	if err != nil {
		fail(err)
	}
	if _, err := campaign.StreamPlan(plan, campaign.EngineOptions{Options: ropts},
		func(pos int, r campaign.Result) { res = r }); err != nil {
		fail(err)
	}
	rec := campaign.ToRecord(0, res)
	time1 := func(name string) float64 {
		c, err := campaign.NewCodec(name)
		if err != nil {
			fail(err)
		}
		const iters = 100000
		buf := make([]byte, 0, 4096)
		start := time.Now()
		for i := 0; i < iters; i++ {
			buf = buf[:0]
			if buf, err = c.AppendEncode(buf, &rec); err != nil {
				fail(err)
			}
		}
		return float64(time.Since(start).Nanoseconds()) / iters
	}
	return time1("json"), time1("raw")
}

// compare gates the measurement against a committed baseline: tests/sec
// may not drop, and allocs/test may not rise, past the gate percentage.
// Improvements always pass.
func compare(cur Bench, path string, gatePct float64) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Bench
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	speed := 100 * (cur.TestsPerSec - base.TestsPerSec) / base.TestsPerSec
	allocs := 100 * (cur.AllocsPerTest - base.AllocsPerTest) / base.AllocsPerTest
	fmt.Fprintf(os.Stderr, "xmbench: vs %s: tests/sec %+.1f%% (%.0f -> %.0f), allocs/test %+.1f%% (%.1f -> %.1f), gate ±%.0f%%\n",
		path, speed, base.TestsPerSec, cur.TestsPerSec, allocs, base.AllocsPerTest, cur.AllocsPerTest, gatePct)
	if speed < -gatePct {
		return fmt.Errorf("throughput regressed %.1f%% past the %.0f%% gate", -speed, gatePct)
	}
	if allocs > gatePct {
		return fmt.Errorf("allocations regressed %.1f%% past the %.0f%% gate", allocs, gatePct)
	}
	return nil
}
