module xmrobust

go 1.24
