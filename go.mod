// xmrobust ships with zero dependencies, tools included: even the
// invariant lint suite (internal/lint, cmd/xmlint) reimplements the go
// vet tool protocol on the standard library instead of depending on
// golang.org/x/tools. Keep it that way — the vulnerability scan
// (govulncheck) runs in CI from outside the module for the same reason.
module xmrobust

go 1.24
